// Tests for joint probability tables (Definition 2).

#include <gtest/gtest.h>

#include "pgsim/common/random.h"
#include "pgsim/prob/jpt.h"

namespace pgsim {
namespace {

TEST(JptTest, FromWeightsNormalizes) {
  auto t = JointProbTable::FromWeights({1.0, 1.0, 2.0, 4.0});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->arity(), 2u);
  EXPECT_DOUBLE_EQ(t->Prob(0), 0.125);
  EXPECT_DOUBLE_EQ(t->Prob(3), 0.5);
  EXPECT_NEAR(t->TotalMass(), 1.0, 1e-12);
}

TEST(JptTest, RejectsBadWeights) {
  EXPECT_FALSE(JointProbTable::FromWeights({}).ok());
  EXPECT_FALSE(JointProbTable::FromWeights({1.0, 2.0, 3.0}).ok());  // not 2^k
  EXPECT_FALSE(JointProbTable::FromWeights({-1.0, 2.0}).ok());
  EXPECT_FALSE(JointProbTable::FromWeights({0.0, 0.0}).ok());  // zero sum
}

TEST(JptTest, RejectsExcessiveArity) {
  std::vector<double> weights(1ULL << 17, 1.0);
  EXPECT_FALSE(JointProbTable::FromWeights(weights).ok());
}

TEST(JptTest, IndependentTableMatchesProducts) {
  auto t = JointProbTable::Independent({0.3, 0.6});
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(t->Prob(0b00), 0.7 * 0.4, 1e-12);
  EXPECT_NEAR(t->Prob(0b01), 0.3 * 0.4, 1e-12);
  EXPECT_NEAR(t->Prob(0b10), 0.7 * 0.6, 1e-12);
  EXPECT_NEAR(t->Prob(0b11), 0.3 * 0.6, 1e-12);
}

TEST(JptTest, IndependentRejectsBadProbability) {
  EXPECT_FALSE(JointProbTable::Independent({1.2}).ok());
  EXPECT_FALSE(JointProbTable::Independent({-0.1}).ok());
}

TEST(JptTest, MarginalAllPresent) {
  auto t = JointProbTable::Independent({0.5, 0.5, 0.5});
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(t->MarginalAllPresent(0b101), 0.25, 1e-12);
  EXPECT_NEAR(t->MarginalAllPresent(0b111), 0.125, 1e-12);
  EXPECT_NEAR(t->MarginalAllPresent(0), 1.0, 1e-12);
}

TEST(JptTest, GeneralMarginal) {
  // Correlated table over 2 edges: mass only on 00 and 11.
  auto t = JointProbTable::FromWeights({0.4, 0.0, 0.0, 0.6});
  ASSERT_TRUE(t.ok());
  // Pr(e0 = 1) = 0.6, Pr(e0 = 1, e1 = 0) = 0.
  EXPECT_NEAR(t->Marginal(0b01, 0b01), 0.6, 1e-12);
  EXPECT_NEAR(t->Marginal(0b11, 0b01), 0.0, 1e-12);
  EXPECT_NEAR(t->Marginal(0b11, 0b00), 0.4, 1e-12);
}

TEST(JptTest, SampleMatchesDistribution) {
  auto t = JointProbTable::FromWeights({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(t.ok());
  Rng rng(51);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[t->Sample(&rng)];
  for (uint32_t mask = 0; mask < 4; ++mask) {
    EXPECT_NEAR(counts[mask] / static_cast<double>(n), t->Prob(mask), 0.015);
  }
}

TEST(JptTest, SampleConditionedRespectsEvidence) {
  auto t = JointProbTable::FromWeights({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(t.ok());
  Rng rng(53);
  // Condition on bit 0 = 1: only masks 0b01 and 0b11 allowed, renormalized.
  int count11 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto mask = t->SampleConditioned(&rng, 0b01, 0b01);
    ASSERT_TRUE(mask.ok());
    ASSERT_TRUE((*mask & 0b01) == 0b01);
    if (*mask == 0b11) ++count11;
  }
  EXPECT_NEAR(count11 / static_cast<double>(n), 4.0 / 6.0, 0.02);
}

TEST(JptTest, SampleConditionedFailsOnZeroMass) {
  auto t = JointProbTable::FromWeights({1.0, 0.0, 1.0, 0.0});
  ASSERT_TRUE(t.ok());
  Rng rng(55);
  // bit 0 = 1 has zero probability.
  EXPECT_FALSE(t->SampleConditioned(&rng, 0b01, 0b01).ok());
}

TEST(JptTest, PaperFigure1Table) {
  // Graph 001's JPT from Figure 1: 8 assignments over {e1, e2, e3}.
  // Order there is (e1, e2, e3) with "1 1 1 -> 0.2" first; encode e1 as
  // bit 0. The table is already normalized (sums to 1).
  std::vector<double> probs(8);
  probs[0b111] = 0.2;
  probs[0b011] = 0.2;  // e1=1 e2=1 e3=0 -> bits e1|e2
  probs[0b101] = 0.1;
  probs[0b001] = 0.1;
  probs[0b110] = 0.1;
  probs[0b010] = 0.1;
  probs[0b100] = 0.1;
  probs[0b000] = 0.1;
  auto t = JointProbTable::FromWeights(probs);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(t->TotalMass(), 1.0, 1e-12);
  // Pr(e1 = 1) = 0.2 + 0.2 + 0.1 + 0.1 = 0.6.
  EXPECT_NEAR(t->Marginal(0b001, 0b001), 0.6, 1e-12);
}

}  // namespace
}  // namespace pgsim
