// Robustness and cross-cutting property tests: the full pipeline on
// tree-model (overlapping ne-set) databases, the >64-term exact-DNF
// fallback, cap/saturation behaviors, and the star-query extractor.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/mcs.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/pmi.h"
#include "pgsim/prob/dnf_exact.h"
#include "pgsim/prob/possible_world.h"
#include "pgsim/query/processor.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

TEST(TreeModelPipelineTest, PipelineMatchesExactScanOnOverlappingNeSets) {
  SyntheticOptions options;
  options.num_graphs = 8;
  options.avg_vertices = 7;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 3;
  options.overlap_fraction = 0.7;  // force kTree models
  options.seed = 5001;
  auto db = GenerateDatabase(options).value();
  size_t tree_models = 0;
  for (const auto& g : db) tree_models += g.kind() == JointModelKind::kTree;
  ASSERT_GT(tree_models, 0u);

  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 3000;
  build.sip.mc.max_samples = 3000;
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  auto filter = StructuralFilter::Build(certain, pmi.features());
  const QueryProcessor processor(&db, &pmi, &filter);

  Rng rng(5);
  QueryOptions qopts;
  qopts.delta = 1;
  qopts.epsilon = 0.4;
  qopts.verify_mode = QueryOptions::VerifyMode::kExact;
  for (int trial = 0; trial < 3; ++trial) {
    auto q = ExtractQuery(certain[rng.Uniform(certain.size())], 4, &rng);
    ASSERT_TRUE(q.ok());
    auto pipeline = processor.Query(*q, qopts);
    auto exact = processor.ExactScan(*q, qopts);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE(exact.ok());
    // Disagreements only near the threshold (Monte-Carlo PMI bounds).
    std::vector<uint32_t> sym_diff;
    std::set_symmetric_difference(pipeline->begin(), pipeline->end(),
                                  exact->begin(), exact->end(),
                                  std::back_inserter(sym_diff));
    auto relaxed = GenerateRelaxedQueries(*q, qopts.delta);
    ASSERT_TRUE(relaxed.ok());
    for (uint32_t gi : sym_diff) {
      auto ssp = ExactSubgraphSimilarityProbability(db[gi], *relaxed);
      ASSERT_TRUE(ssp.ok());
      EXPECT_NEAR(*ssp, qopts.epsilon, 0.12) << "graph " << gi;
    }
  }
}

TEST(DnfFallbackTest, ManyTermsMatchBruteForceViaShannon) {
  // > 64 absorbed terms forces the Shannon engine even on partition models.
  Rng rng(5003);
  const Graph g = RandomGraph(&rng, 10, 9, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  const uint32_t m = pg.NumEdges();
  ASSERT_GE(m, 13u);  // C(13, 2) = 78 > 64 pair terms
  // 2-edge terms: all pairs (i, j) gives C(m,2) >= 36; add 3-edge terms to
  // exceed 64 after absorption... use all pairs plus shifted triples.
  std::vector<EdgeBitset> terms;
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = i + 1; j < m; ++j) {
      terms.push_back(EdgeBitset::FromIndices(m, {i, j}));
    }
  }
  const auto reduced = AbsorbDnfTerms(terms);
  ASSERT_GT(reduced.size(), 64u);
  auto fast = ExactDnfProbability(pg, terms);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  // Brute force over worlds.
  double expected = 0.0;
  ASSERT_TRUE(EnumerateWorlds(pg,
                              [&](const EdgeBitset& world, double p) {
                                for (const EdgeBitset& t : terms) {
                                  if (world.ContainsAll(t)) {
                                    expected += p;
                                    break;
                                  }
                                }
                                return true;
                              })
                  .ok());
  EXPECT_NEAR(*fast, expected, 1e-9);
}

TEST(RelaxationCapTest, MaxRelaxedGraphsCapSurfaces) {
  Rng rng(5007);
  // A query whose relaxations are all non-isomorphic: distinct labels.
  GraphBuilder builder;
  for (uint32_t i = 0; i < 7; ++i) builder.AddVertex(i);
  for (uint32_t i = 0; i + 1 < 7; ++i) {
    ASSERT_TRUE(builder.AddEdge(i, i + 1, 0).ok());
  }
  const Graph q = builder.Build();
  RelaxationOptions options;
  options.max_relaxed_graphs = 3;
  auto u = GenerateRelaxedQueries(q, 2, options);
  ASSERT_FALSE(u.ok());
  EXPECT_EQ(u.status().code(), StatusCode::kResourceExhausted);
}

TEST(StructuralFilterSaturationTest, SaturatedCountsStaySound) {
  SyntheticOptions options;
  options.num_graphs = 10;
  options.avg_vertices = 9;
  options.num_vertex_labels = 2;  // many embeddings -> saturation
  options.seed = 5011;
  auto db = GenerateDatabase(options).value();
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  FeatureMinerOptions miner;
  miner.beta = 0.2;
  miner.gamma = -1.0;
  miner.max_vertices = 3;
  auto features = MineFeatures(certain, miner).value();
  StructuralFilterOptions sf_options;
  sf_options.max_count = 1;  // force saturation nearly everywhere
  sf_options.exact_check = false;
  auto filter = StructuralFilter::Build(certain, features.features,
                                        sf_options);
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const uint32_t delta = trial % 2;
    auto q = ExtractQuery(certain[rng.Uniform(certain.size())], 3 + delta,
                          &rng);
    ASSERT_TRUE(q.ok());
    auto relaxed = GenerateRelaxedQueries(*q, delta);
    ASSERT_TRUE(relaxed.ok());
    const auto survivors = filter.Filter(*q, *relaxed, delta);
    for (uint32_t gi = 0; gi < certain.size(); ++gi) {
      if (IsSubgraphSimilar(*q, certain[gi], delta)) {
        EXPECT_NE(std::find(survivors.begin(), survivors.end(), gi),
                  survivors.end())
            << "saturated filter dropped a true answer";
      }
    }
  }
}

TEST(StarQueryTest, ExtractsRequestedStar) {
  Rng rng(5013);
  const Graph g = RandomGraph(&rng, 10, 8, 2);
  auto star = ExtractStarQuery(g, 3, &rng);
  if (!star.ok()) GTEST_SKIP() << "no vertex of degree >= 3 in this draw";
  EXPECT_EQ(star->NumEdges(), 3u);
  EXPECT_EQ(star->NumVertices(), 4u);
  // One center of degree 3, three leaves of degree 1.
  uint32_t centers = 0, leaves = 0;
  for (VertexId v = 0; v < star->NumVertices(); ++v) {
    if (star->Degree(v) == 3) ++centers;
    if (star->Degree(v) == 1) ++leaves;
  }
  EXPECT_EQ(centers, 1u);
  EXPECT_EQ(leaves, 3u);
  EXPECT_TRUE(IsSubgraphIsomorphic(*star, g));
}

TEST(StarQueryTest, FailsWithoutBigEnoughHub) {
  Rng rng(5017);
  const Graph path = ::pgsim::testing::MakePath(5);
  EXPECT_FALSE(ExtractStarQuery(path, 3, &rng).ok());
}

TEST(HubGroupingTest, HubEdgesShareNeSets) {
  SyntheticOptions options;
  options.num_graphs = 4;
  options.avg_vertices = 12;
  options.edge_factor = 1.6;
  options.max_ne_size = 4;
  options.group_hubs_first = true;
  options.seed = 5019;
  auto db = GenerateDatabase(options).value();
  for (const auto& g : db) {
    // The highest-degree vertex's edges should concentrate in few groups:
    // at most ceil(degree / max_ne_size) + 1 groups touch it.
    VertexId hub = 0;
    for (VertexId v = 0; v < g.certain().NumVertices(); ++v) {
      if (g.certain().Degree(v) > g.certain().Degree(hub)) hub = v;
    }
    EdgeBitset hub_edges(g.NumEdges());
    for (const AdjEntry& adj : g.certain().Neighbors(hub)) {
      hub_edges.Set(adj.edge);
    }
    size_t groups_touching = 0;
    for (const NeighborEdgeSet& ne : g.ne_sets()) {
      for (EdgeId e : ne.edges) {
        if (hub_edges.Test(e)) {
          ++groups_touching;
          break;
        }
      }
    }
    const size_t degree = g.certain().Degree(hub);
    EXPECT_LE(groups_touching, (degree + 3) / 4 + 1);
  }
}

TEST(PmiRebuildDeterminismTest, SameSeedSameIndex) {
  SyntheticOptions options;
  options.num_graphs = 6;
  options.avg_vertices = 8;
  options.seed = 5023;
  auto db = GenerateDatabase(options).value();
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.seed = 99;
  auto a = ProbabilisticMatrixIndex::Build(db, build).value();
  auto b = ProbabilisticMatrixIndex::Build(db, build).value();
  ASSERT_EQ(a.features().size(), b.features().size());
  for (uint32_t gi = 0; gi < a.num_graphs(); ++gi) {
    const auto& ea = a.EntriesFor(gi);
    const auto& eb = b.EntriesFor(gi);
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t k = 0; k < ea.size(); ++k) {
      EXPECT_EQ(ea[k].feature_id, eb[k].feature_id);
      EXPECT_FLOAT_EQ(ea[k].lower_opt, eb[k].lower_opt);
      EXPECT_FLOAT_EQ(ea[k].upper_opt, eb[k].upper_opt);
    }
  }
}

}  // namespace
}  // namespace pgsim
