// Tests for the exact monotone-DNF probability engine against brute-force
// world enumeration, on both the partition and tree models.

#include <gtest/gtest.h>

#include "pgsim/prob/dnf_exact.h"
#include "pgsim/prob/possible_world.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

double BruteDnf(const ProbabilisticGraph& g,
                const std::vector<EdgeBitset>& terms) {
  double total = 0.0;
  EXPECT_TRUE(EnumerateWorlds(g,
                              [&](const EdgeBitset& world, double p) {
                                for (const EdgeBitset& t : terms) {
                                  if (world.ContainsAll(t)) {
                                    total += p;
                                    break;
                                  }
                                }
                                return true;
                              })
                  .ok());
  return total;
}

std::vector<EdgeBitset> RandomTerms(Rng* rng, uint32_t num_edges,
                                    size_t num_terms, uint32_t max_term) {
  std::vector<EdgeBitset> terms;
  for (size_t t = 0; t < num_terms; ++t) {
    EdgeBitset term(num_edges);
    const uint32_t size = 1 + rng->Uniform(max_term);
    for (uint32_t i = 0; i < size; ++i) {
      term.Set(rng->Uniform(num_edges));
    }
    terms.push_back(term);
  }
  return terms;
}

TEST(AbsorbTest, RemovesSupersetsAndDuplicates) {
  std::vector<EdgeBitset> terms{
      EdgeBitset::FromIndices(8, {0, 1, 2}),
      EdgeBitset::FromIndices(8, {0, 1}),
      EdgeBitset::FromIndices(8, {0, 1}),      // duplicate
      EdgeBitset::FromIndices(8, {3}),
      EdgeBitset::FromIndices(8, {3, 4, 5})};  // superset of {3}
  const auto reduced = AbsorbDnfTerms(terms);
  EXPECT_EQ(reduced.size(), 2u);
}

TEST(DnfExactTest, EmptyTermListIsZero) {
  Rng rng(211);
  const Graph g = RandomGraph(&rng, 4, 1, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  auto p = ExactDnfProbability(pg, {});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
}

TEST(DnfExactTest, EmptyTermIsOne) {
  Rng rng(213);
  const Graph g = RandomGraph(&rng, 4, 1, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  auto p = ExactDnfProbability(pg, {EdgeBitset(pg.NumEdges())});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);
}

TEST(DnfExactTest, SingleTermEqualsMarginal) {
  Rng rng(217);
  const Graph g = RandomGraph(&rng, 6, 3, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  EdgeBitset term = EdgeBitset::FromIndices(pg.NumEdges(), {0, 2});
  auto p = ExactDnfProbability(pg, {term});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, pg.MarginalAllPresent(term), 1e-10);
}

TEST(DnfExactTest, TooManyTermsRejected) {
  Rng rng(219);
  const Graph g = RandomGraph(&rng, 6, 3, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  std::vector<EdgeBitset> terms;
  for (uint32_t i = 0; i < 70; ++i) {
    EdgeBitset t(pg.NumEdges());
    t.Set(i % pg.NumEdges());
    // Give each term a distinct second element so absorption keeps them.
    terms.push_back(t);
  }
  DnfExactOptions options;
  options.max_terms = 4;
  auto p = ExactDnfProbability(pg, terms, options);
  // Either absorbed below the cap (duplicates collapse) or rejected; with
  // single-element terms absorption dedups to <= num_edges, so force tiny cap.
  if (!p.ok()) {
    EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
  }
}

class DnfRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>> {};

TEST_P(DnfRandomTest, PartitionEngineMatchesBruteForce) {
  const auto [seed, num_terms, max_term_size] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 1);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    const auto terms =
        RandomTerms(&rng, pg.NumEdges(), num_terms, max_term_size);
    auto p = ExactDnfProbability(pg, terms);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(*p, BruteDnf(pg, terms), 1e-9)
        << "seed=" << seed << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DnfRandomTest,
    ::testing::Values(std::make_tuple(301ULL, 1, 3),
                      std::make_tuple(302ULL, 3, 3),
                      std::make_tuple(303ULL, 5, 2),
                      std::make_tuple(304ULL, 8, 4),
                      std::make_tuple(305ULL, 12, 3)));

TEST(DnfExactTest, TreeModelShannonMatchesBruteForce) {
  // Overlapping ne sets: {e0,e1,e2} and {e2,e3} sharing e2 on a star.
  const Graph g = MakeGraph({0, 0, 0, 0, 0},
                            {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {3, 4, 0}});
  Rng rng(307);
  std::vector<double> w1(8), w2(4);
  for (auto& w : w1) w = 0.05 + rng.UniformDouble();
  for (auto& w : w2) w = 0.05 + rng.UniformDouble();
  NeighborEdgeSet ne1, ne2;
  ne1.edges = {0, 1, 2};
  ne1.table = JointProbTable::FromWeights(w1).value();
  ne2.edges = {2, 3};
  ne2.table = JointProbTable::FromWeights(w2).value();
  auto pg = ProbabilisticGraph::Create(g, {ne1, ne2});
  ASSERT_TRUE(pg.ok());
  ASSERT_EQ(pg->kind(), JointModelKind::kTree);

  for (int trial = 0; trial < 10; ++trial) {
    const auto terms = RandomTerms(&rng, pg->NumEdges(), 4, 3);
    auto p = ExactDnfProbability(*pg, terms);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(*p, BruteDnf(*pg, terms), 1e-9) << "trial=" << trial;
  }
}

TEST(DnfExactTest, ShannonNodeBudgetErrors) {
  // Tree-model instance with a tiny node budget must fail cleanly.
  const Graph g = MakeGraph({0, 0, 0}, {{0, 1, 0}, {0, 2, 0}});
  Rng rng(311);
  NeighborEdgeSet ne1, ne2;
  ne1.edges = {0, 1};
  ne1.table = JointProbTable::FromWeights({1, 1, 1, 1}).value();
  ne2.edges = {1};
  ne2.table = JointProbTable::FromWeights({1, 1}).value();
  auto pg = ProbabilisticGraph::Create(g, {ne1, ne2});
  ASSERT_TRUE(pg.ok());
  ASSERT_EQ(pg->kind(), JointModelKind::kTree);
  DnfExactOptions options;
  options.max_shannon_nodes = 1;
  const auto terms = RandomTerms(&rng, pg->NumEdges(), 3, 2);
  auto p = ExactDnfProbability(*pg, terms, options);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pgsim
