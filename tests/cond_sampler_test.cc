// Tests for the Algorithm 3 conditional-probability sampler against exact
// conditionals computed by world enumeration.

#include <gtest/gtest.h>

#include "pgsim/bounds/cond_sampler.h"
#include "pgsim/prob/possible_world.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

double ExactConditional(const ProbabilisticGraph& g, const EdgeEvent& target,
                        const std::vector<EdgeEvent>& conditioning) {
  double num = 0.0, den = 0.0;
  EXPECT_TRUE(EnumerateWorlds(g,
                              [&](const EdgeBitset& world, double p) {
                                bool clear = true;
                                for (const EdgeEvent& ev : conditioning) {
                                  if (ev.Holds(world)) {
                                    clear = false;
                                    break;
                                  }
                                }
                                if (clear) {
                                  den += p;
                                  if (target.Holds(world)) num += p;
                                }
                                return true;
                              })
                  .ok());
  return den > 0.0 ? num / den : 0.0;
}

TEST(MonteCarloParamsTest, SampleCountFormula) {
  MonteCarloParams p;
  p.xi = 0.1;
  p.tau = 0.1;
  p.min_samples = 1;
  p.max_samples = 1'000'000;
  // 4 ln(20) / 0.01 ~ 1198.3
  EXPECT_EQ(p.NumSamples(), 1199u);
  p.tau = 1.0;
  p.min_samples = 100;
  EXPECT_EQ(p.NumSamples(), 100u);  // clamped up to min
  p.tau = 1e-9;
  p.max_samples = 5000;
  EXPECT_EQ(p.NumSamples(), 5000u);  // clamped down to max
}

TEST(EdgeEventTest, HoldsSemantics) {
  EdgeBitset world = EdgeBitset::FromIndices(6, {0, 2, 4});
  EdgeEvent embedding{EdgeBitset::FromIndices(6, {0, 2}), true};
  EdgeEvent missing_embedding{EdgeBitset::FromIndices(6, {0, 1}), true};
  EdgeEvent cut{EdgeBitset::FromIndices(6, {1, 3}), false};
  EdgeEvent broken_cut{EdgeBitset::FromIndices(6, {1, 4}), false};
  EXPECT_TRUE(embedding.Holds(world));
  EXPECT_FALSE(missing_embedding.Holds(world));
  EXPECT_TRUE(cut.Holds(world));        // both absent: cut realized
  EXPECT_FALSE(broken_cut.Holds(world));  // edge 4 present
}

TEST(CondSamplerTest, UnconditionalMatchesMarginal) {
  Rng rng(601);
  const Graph g = RandomGraph(&rng, 6, 3, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  EdgeEvent target{EdgeBitset::FromIndices(pg.NumEdges(), {0, 1}), true};
  MonteCarloParams params;
  params.xi = 0.05;
  params.tau = 0.03;
  params.max_samples = 100'000;
  const double estimate =
      EstimateConditionalProbability(pg, target, {}, params, &rng);
  EXPECT_NEAR(estimate, pg.MarginalAllPresent(target.edges), 0.03);
}

TEST(CondSamplerTest, ScratchOverloadIsBitIdenticalToLegacy) {
  Rng seed_rng(603);
  const Graph g = RandomGraph(&seed_rng, 6, 3, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &seed_rng);
  EdgeEvent target{EdgeBitset::FromIndices(pg.NumEdges(), {0, 1}), true};
  std::vector<EdgeEvent> conditioning{
      EdgeEvent{EdgeBitset::FromIndices(pg.NumEdges(), {2}), false}};
  MonteCarloParams params;
  params.min_samples = 2000;
  params.max_samples = 2000;
  Rng r1(41), r2(41), r3(41);
  const double legacy =
      EstimateConditionalProbability(pg, target, conditioning, params, &r1);
  CondSamplerScratch scratch;
  const double with_scratch = EstimateConditionalProbability(
      pg, target, conditioning, params, &r2, &scratch);
  EXPECT_EQ(legacy, with_scratch);
  // Dirty reuse of the same scratch must not change the estimate.
  const double reused = EstimateConditionalProbability(
      pg, target, conditioning, params, &r3, &scratch);
  EXPECT_EQ(legacy, reused);
}

class CondSamplerRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CondSamplerRandomTest, MatchesExactConditional) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 1);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    const uint32_t m = pg.NumEdges();
    // Target: a 2-edge embedding event; conditioning: two other events.
    EdgeEvent target{EdgeBitset::FromIndices(m, {0, 1 % m}), true};
    std::vector<EdgeEvent> conditioning{
        EdgeEvent{EdgeBitset::FromIndices(m, {2 % m, 3 % m}), true},
        EdgeEvent{EdgeBitset::FromIndices(m, {4 % m}), false}};
    const double exact = ExactConditional(pg, target, conditioning);
    MonteCarloParams params;
    params.xi = 0.05;
    params.tau = 0.02;
    params.max_samples = 200'000;
    const double estimate = EstimateConditionalProbability(
        pg, target, conditioning, params, &rng);
    EXPECT_NEAR(estimate, exact, 0.04) << "trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CondSamplerRandomTest,
                         ::testing::Values(611ULL, 613ULL, 617ULL));

TEST(CondSamplerTest, ImpossibleConditioningReturnsZero) {
  Rng rng(619);
  const Graph g = RandomGraph(&rng, 4, 1, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  // Conditioning event that always holds: edge 0 present OR absent both
  // listed, so every world triggers one of them -> n2 stays 0.
  std::vector<EdgeEvent> conditioning{
      EdgeEvent{EdgeBitset::FromIndices(pg.NumEdges(), {0}), true},
      EdgeEvent{EdgeBitset::FromIndices(pg.NumEdges(), {0}), false}};
  EdgeEvent target{EdgeBitset::FromIndices(pg.NumEdges(), {1}), true};
  MonteCarloParams params;
  params.max_samples = 2000;
  const double estimate =
      EstimateConditionalProbability(pg, target, conditioning, params, &rng);
  EXPECT_DOUBLE_EQ(estimate, 0.0);
}

}  // namespace
}  // namespace pgsim
