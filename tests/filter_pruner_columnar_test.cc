// Equivalence suite for PR 4's columnar filter/prune engine.
//
//   * Filter(): survivors of the feature-major bitset sweep must be
//     bit-identical to a per-graph reference evaluation of the same
//     thresholds (including saturated 0xFFFF cells, which never prune);
//   * the exact check's label-multiset/size guard and ascending-edge rq
//     order must not change SCq (cross-checked against an unguarded,
//     unordered VF2 loop);
//   * ProbabilisticPruner: the columnar bound-program path (PrunerScratch
//     overloads) must produce bit-identical PruneDecision streams AND leave
//     the RNG in the same state as the allocating reference path, for both
//     BoundSelection x both SipVariant, several delta/epsilon points, and
//     batch-cache on/off;
//   * steady state: a second pruning pass over the same candidates performs
//     no scratch growth (mirrors verifier_engine_test's pool pin).

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/prob_pruner.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

struct Fixture {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> certain;
  ProbabilisticMatrixIndex pmi;
};

Fixture MakeFixture(uint64_t seed, size_t num_graphs = 12) {
  SyntheticOptions options;
  options.num_graphs = num_graphs;
  options.avg_vertices = 9;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 3;
  options.seed = seed;
  Fixture fx;
  fx.db = GenerateDatabase(options).value();
  for (const auto& g : fx.db) fx.certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.alpha = 0.0;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 400;
  build.sip.mc.max_samples = 400;
  fx.pmi = ProbabilisticMatrixIndex::Build(fx.db, build).value();
  return fx;
}

// Reference count filter: the pre-columnar per-graph inner loop over
// thresholds, rebuilt from the public count matrix.
std::vector<uint32_t> ReferenceCountFilter(const StructuralFilter& filter,
                                           const QueryFeatureCounts& counts,
                                           uint32_t delta) {
  std::vector<std::pair<uint32_t, uint32_t>> thresholds;
  for (const QueryFeatureCounts::Entry& entry : counts.entries) {
    const uint64_t destroyed = uint64_t{delta} * entry.max_per_edge;
    if (entry.count > destroyed) {
      thresholds.emplace_back(entry.feature,
                              static_cast<uint32_t>(entry.count - destroyed));
    }
  }
  std::vector<uint32_t> survivors;
  for (uint32_t gi = 0; gi < filter.num_graphs(); ++gi) {
    bool pruned = false;
    for (const auto& [feature, needed] : thresholds) {
      const uint16_t have = filter.CountAt(feature, gi);
      if (have == 0xFFFF) continue;  // saturated: unknown, cannot prune
      if (have < needed) {
        pruned = true;
        break;
      }
    }
    if (!pruned) survivors.push_back(gi);
  }
  return survivors;
}

class ColumnarFilterTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnarFilterTest, CountSweepMatchesReference) {
  const uint64_t seed = GetParam();
  Fixture fx = MakeFixture(seed);
  // max_count = 2 forces saturated cells (0xFFFF) on common features, so
  // the "saturated never prunes" rule is exercised, not just dodged.
  for (const uint32_t max_count : {64u, 2u}) {
    StructuralFilterOptions options;
    options.max_count = max_count;
    options.exact_check = false;  // isolate the count sweep
    const StructuralFilter filter =
        StructuralFilter::Build(fx.certain, fx.pmi.features(), options);
    if (max_count == 2) {
      size_t saturated = 0;
      for (uint16_t c : filter.counts()) saturated += (c == 0xFFFF);
      EXPECT_GT(saturated, 0u) << "fixture must exercise saturated cells";
    }
    Rng rng(seed + 17);
    for (int trial = 0; trial < 4; ++trial) {
      for (const uint32_t delta : {0u, 1u, 2u}) {
        auto q = ExtractQuery(fx.certain[rng.Uniform(fx.certain.size())],
                              delta + 3, &rng);
        if (!q.ok()) continue;
        auto relaxed = GenerateRelaxedQueries(*q, delta);
        ASSERT_TRUE(relaxed.ok());
        const auto survivors = filter.Filter(*q, *relaxed, delta);
        const auto expected =
            ReferenceCountFilter(filter, filter.ComputeQueryCounts(*q), delta);
        EXPECT_EQ(survivors, expected)
            << "seed=" << seed << " trial=" << trial << " delta=" << delta
            << " max_count=" << max_count;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColumnarFilterTest,
                         ::testing::Values(7001ULL, 7003ULL, 7005ULL));

TEST(ColumnarFilterTest, ExactCheckGuardsPreserveSurvivors) {
  Fixture fx = MakeFixture(7011);
  const StructuralFilter filter =
      StructuralFilter::Build(fx.certain, fx.pmi.features());
  StructuralFilterOptions count_only;
  count_only.exact_check = false;
  const StructuralFilter count_filter =
      StructuralFilter::Build(fx.certain, fx.pmi.features(), count_only);
  Rng rng(7012);
  int checked = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const uint32_t delta = trial % 3;
    auto q = ExtractQuery(fx.certain[rng.Uniform(fx.certain.size())],
                          delta + 3, &rng);
    if (!q.ok()) continue;
    auto relaxed = GenerateRelaxedQueries(*q, delta);
    ASSERT_TRUE(relaxed.ok());
    StructuralFilterStats stats;
    const auto survivors = filter.Filter(*q, *relaxed, delta, &stats);
    // Reference: unguarded VF2 over the count-filter survivors in input
    // order. The guard and the ascending-edge visit order may only skip
    // tests, never flip a survivor.
    std::vector<uint32_t> expected;
    for (uint32_t gi : count_filter.Filter(*q, *relaxed, delta)) {
      for (const Graph& rq : *relaxed) {
        if (IsSubgraphIsomorphic(rq, fx.certain[gi])) {
          expected.push_back(gi);
          break;
        }
      }
    }
    EXPECT_EQ(survivors, expected) << "trial=" << trial;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

struct PrunerCase {
  BoundSelection selection;
  SipVariant sip;
};

class ColumnarPrunerTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ColumnarPrunerTest, DecisionStreamAndRngMatchReference) {
  const auto [seed, case_index] = GetParam();
  static const PrunerCase cases[] = {
      {BoundSelection::kOptimized, SipVariant::kOpt},
      {BoundSelection::kOptimized, SipVariant::kSimple},
      {BoundSelection::kRandom, SipVariant::kOpt},
      {BoundSelection::kRandom, SipVariant::kSimple},
  };
  const PrunerCase& pc = cases[case_index];
  Fixture fx = MakeFixture(seed);
  ProbPrunerOptions options;
  options.selection = pc.selection;
  options.sip_variant = pc.sip;
  ProbabilisticPruner pruner(&fx.pmi, options);
  Rng qrng(seed + 31);
  PrunerScratch scratch;
  for (const uint32_t delta : {0u, 1u}) {
    auto q = ExtractQuery(fx.certain[qrng.Uniform(fx.certain.size())],
                          delta + 3, &qrng);
    if (!q.ok()) continue;
    auto relaxed = GenerateRelaxedQueries(*q, delta);
    ASSERT_TRUE(relaxed.ok());
    pruner.PrepareQuery(*relaxed);
    for (const double epsilon : {0.1, 0.5, 0.9, 2.0}) {
      // Same-seeded RNG pair: decisions AND the post-evaluation RNG state
      // must agree graph by graph (the processor's verification stage forks
      // from this stream, so any divergence would change answers).
      Rng ref_rng(seed ^ 0xABCD);
      Rng col_rng(seed ^ 0xABCD);
      for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
        const PruneDecision ref = pruner.Evaluate(gi, epsilon, &ref_rng);
        const PruneDecision col =
            pruner.Evaluate(gi, epsilon, &col_rng, &scratch);
        EXPECT_EQ(static_cast<int>(ref.outcome), static_cast<int>(col.outcome))
            << "graph " << gi << " eps=" << epsilon << " delta=" << delta;
        EXPECT_EQ(ref.usim, col.usim) << "graph " << gi;
        EXPECT_EQ(ref.lsim, col.lsim) << "graph " << gi;
        EXPECT_EQ(ref_rng.Next(), col_rng.Next()) << "graph " << gi;
      }
      // Bounds (no short-circuit) too.
      Rng ref_rng2(seed ^ 0x1234);
      Rng col_rng2(seed ^ 0x1234);
      for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
        const PruneDecision ref = pruner.Bounds(gi, &ref_rng2);
        const PruneDecision col = pruner.Bounds(gi, &col_rng2, &scratch);
        EXPECT_EQ(ref.usim, col.usim) << "graph " << gi;
        EXPECT_EQ(ref.lsim, col.lsim) << "graph " << gi;
        EXPECT_EQ(ref_rng2.Next(), col_rng2.Next()) << "graph " << gi;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColumnarPrunerTest,
    ::testing::Combine(::testing::Values(7101ULL, 7103ULL),
                       ::testing::Values(0, 1, 2, 3)));

TEST(ColumnarPrunerTest, PreparedFromCacheCarriesTheProgram) {
  // A pruner fed relations through the cache tier must evaluate exactly like
  // the pruner that computed them (the compiled program rides along).
  Fixture fx = MakeFixture(7111);
  ProbPrunerOptions options;
  ProbabilisticPruner fresh(&fx.pmi, options);
  Rng qrng(7112);
  auto q = ExtractQuery(fx.certain[0], 4, &qrng);
  ASSERT_TRUE(q.ok());
  auto relaxed = GenerateRelaxedQueries(*q, 1);
  ASSERT_TRUE(relaxed.ok());
  fresh.PrepareQuery(*relaxed);
  EXPECT_GT(fresh.prepare_isomorphism_tests(), 0u);

  ProbabilisticPruner cached(&fx.pmi, options);
  cached.PrepareFromCache(fresh.SharePrepared());
  EXPECT_EQ(cached.prepare_isomorphism_tests(), 0u);

  PrunerScratch s1, s2;
  Rng r1(99), r2(99);
  for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
    const PruneDecision a = fresh.Evaluate(gi, 0.5, &r1, &s1);
    const PruneDecision b = cached.Evaluate(gi, 0.5, &r2, &s2);
    EXPECT_EQ(a.usim, b.usim);
    EXPECT_EQ(a.lsim, b.lsim);
    EXPECT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome));
  }
}

TEST(ColumnarPrunerTest, SecondPassPerformsNoScratchGrowth) {
  // After one sweep over every candidate the scratch has seen the largest
  // gather/solve shapes, so a second identical sweep must not grow any
  // buffer — the zero-steady-state-allocation pin for the per-candidate
  // path (mirrors verifier_engine_test's pool capacity check).
  Fixture fx = MakeFixture(7121, /*num_graphs=*/16);
  for (const BoundSelection selection :
       {BoundSelection::kOptimized, BoundSelection::kRandom}) {
    ProbPrunerOptions options;
    options.selection = selection;
    ProbabilisticPruner pruner(&fx.pmi, options);
    Rng qrng(7122);
    // 3-edge query at delta 2 leaves single-edge rqs, so f² (super) features
    // exist and both pruning bounds do real gather/solve work.
    auto q = ExtractQuery(fx.certain[1], 3, &qrng);
    ASSERT_TRUE(q.ok());
    auto relaxed = GenerateRelaxedQueries(*q, 2);
    ASSERT_TRUE(relaxed.ok());
    pruner.PrepareQuery(*relaxed);
    ASSERT_FALSE(pruner.SharePrepared()->program.lsim_ids.empty())
        << "fixture must exercise the Lsim path";

    PrunerScratch scratch;
    Rng rng(7123);
    // Epsilon 0: Pruning 1 never fires (usim >= 0) so the full Lsim
    // gather/solve runs for every candidate — maximum scratch pressure.
    for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
      (void)pruner.Evaluate(gi, 0.0, &rng, &scratch);
    }
    const size_t capacity_after_first = scratch.CapacityBytes();
    EXPECT_GT(capacity_after_first, 0u);
    for (int pass = 0; pass < 2; ++pass) {
      for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
        (void)pruner.Evaluate(gi, 0.0, &rng, &scratch);
      }
    }
    EXPECT_EQ(scratch.CapacityBytes(), capacity_after_first)
        << "selection=" << static_cast<int>(selection);
  }
}

TEST(ColumnarPipelineTest, BatchAnswersAndCountersMatchAcrossCacheModes) {
  // End-to-end: the decision stream feeding stage 3 must be identical with
  // the batch cache on or off (the cached PreparedQueryRelations carries the
  // compiled program) — answers and every deterministic counter agree.
  Fixture fx = MakeFixture(7131, /*num_graphs=*/18);
  const StructuralFilter filter =
      StructuralFilter::Build(fx.certain, fx.pmi.features());
  const QueryProcessor processor(&fx.db, &fx.pmi, &filter);
  Rng qrng(7132);
  std::vector<Graph> queries;
  while (queries.size() < 6) {
    auto q = ExtractQuery(fx.certain[qrng.Uniform(fx.certain.size())], 4,
                          &qrng);
    if (q.ok()) {
      queries.push_back(*q);
      queries.push_back(std::move(q).value());  // duplicate: exercise cache
    }
  }
  for (const double epsilon : {0.2, 0.5}) {
    QueryOptions options;
    options.delta = 1;
    options.epsilon = epsilon;
    options.verifier.mc.min_samples = 200;
    options.verifier.mc.max_samples = 200;
    std::vector<BatchQueryResult> reference;
    for (const bool enable_cache : {false, true}) {
      BatchOptions batch;
      batch.num_threads = 1;
      batch.enable_cache = enable_cache;
      const auto results = processor.QueryBatch(queries, options, batch);
      if (!enable_cache) {
        reference = results;
        continue;
      }
      ASSERT_EQ(results.size(), reference.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].status.ok());
        EXPECT_EQ(results[i].answers, reference[i].answers)
            << "query " << i << " eps=" << epsilon;
        EXPECT_EQ(results[i].stats.structural_candidates,
                  reference[i].stats.structural_candidates);
        EXPECT_EQ(results[i].stats.pruned_by_upper,
                  reference[i].stats.pruned_by_upper);
        EXPECT_EQ(results[i].stats.accepted_by_lower,
                  reference[i].stats.accepted_by_lower);
        EXPECT_EQ(results[i].stats.verification_candidates,
                  reference[i].stats.verification_candidates);
      }
    }
  }
}

}  // namespace
}  // namespace pgsim
