// Tests of the work-stealing TaskScheduler and the batch paths built on it:
// every task in a (nested) graph executes exactly once; a skewed spawn
// pattern actually gets stolen by idle workers; exceptions propagate out of
// Run() without wedging the scheduler; ThreadPool's bulk submission and
// shutdown drain everything; and QueryBatch answers are bit-identical
// between the chunked and stealing schedulers at every worker count and
// task grain. The multi-worker suites are part of the TSan CI job.

#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <stdexcept>
#include <thread>

#include "pgsim/common/task_scheduler.h"
#include "pgsim/common/thread_pool.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

using Task = TaskScheduler::Task;

// ---------------------------------------------------------------------------
// Scheduler core.
// ---------------------------------------------------------------------------

struct CountCtx {
  std::atomic<uint64_t> executed{0};
};

void CountTask(void* ctx, uint32_t /*worker*/, uint32_t /*a*/, uint32_t /*b*/) {
  static_cast<CountCtx*>(ctx)->executed.fetch_add(1,
                                                  std::memory_order_relaxed);
}

TEST(TaskSchedulerTest, RunExecutesEveryRootExactlyOnce) {
  for (uint32_t workers : {1u, 4u}) {
    TaskScheduler sched(workers);
    EXPECT_EQ(sched.num_workers(), workers);
    CountCtx ctx;
    std::vector<Task> roots(257);
    for (Task& t : roots) t = Task{&CountTask, &ctx, 0, 0};
    const SchedulerRunStats stats = sched.Run(roots);
    EXPECT_EQ(ctx.executed.load(), roots.size()) << "workers=" << workers;
    EXPECT_EQ(stats.tasks_executed, roots.size());
  }
}

TEST(TaskSchedulerTest, ChunkedRootClaimCoversAllRoots) {
  TaskScheduler sched(4);
  CountCtx ctx;
  std::vector<Task> roots(100);
  for (Task& t : roots) t = Task{&CountTask, &ctx, 0, 0};
  const SchedulerRunStats stats = sched.Run(roots, /*root_chunk=*/16);
  EXPECT_EQ(ctx.executed.load(), roots.size());
  EXPECT_GE(stats.root_claims, 1u);
  // 100 roots at chunk 16 need at least ceil(100/16) = 7 claims.
  EXPECT_GE(stats.root_claims, 7u);
}

struct TreeCtx {
  TaskScheduler* sched = nullptr;
  std::atomic<uint64_t> executed{0};
};

// Spawns a binary tree of depth `a`: ~2^(a+1)-1 tasks per root.
void TreeTask(void* ctx, uint32_t worker, uint32_t a, uint32_t b) {
  TreeCtx* tree = static_cast<TreeCtx*>(ctx);
  tree->executed.fetch_add(1, std::memory_order_relaxed);
  if (a == 0) return;
  tree->sched->Spawn(worker, Task{&TreeTask, ctx, a - 1, b});
  tree->sched->Spawn(worker, Task{&TreeTask, ctx, a - 1, b});
}

TEST(TaskSchedulerTest, NestedSpawnTreeExecutesEveryTask) {
  for (uint32_t workers : {1u, 4u}) {
    TaskScheduler sched(workers);
    TreeCtx tree;
    tree.sched = &sched;
    constexpr uint32_t kDepth = 10;  // 2^11 - 1 = 2047 tasks per root
    const Task root{&TreeTask, &tree, kDepth, 0};
    const SchedulerRunStats stats = sched.Run(&root, 1);
    EXPECT_EQ(tree.executed.load(), (1ull << (kDepth + 1)) - 1);
    EXPECT_EQ(stats.tasks_executed, (1ull << (kDepth + 1)) - 1);
    EXPECT_GT(stats.max_queue_depth, 0u);
  }
}

struct SkewCtx {
  TaskScheduler* sched = nullptr;
  std::atomic<uint32_t> worker_seen[64] = {};
  std::atomic<uint64_t> executed{0};
};

void SkewChildTask(void* ctx, uint32_t worker, uint32_t, uint32_t) {
  SkewCtx* skew = static_cast<SkewCtx*>(ctx);
  skew->worker_seen[worker].store(1, std::memory_order_relaxed);
  skew->executed.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// One pathological root: spawns a pile of work onto its own deque, then
// stays busy. Idle workers must steal from it — the scenario the chunked
// parallel-for cannot balance.
void SkewRootTask(void* ctx, uint32_t worker, uint32_t, uint32_t) {
  SkewCtx* skew = static_cast<SkewCtx*>(ctx);
  skew->worker_seen[worker].store(1, std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) {
    skew->sched->Spawn(worker, Task{&SkewChildTask, ctx, 0, 0});
  }
  // Keep the spawner occupied so thieves get a window.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

TEST(TaskSchedulerTest, IdleWorkersStealFromSkewedSpawner) {
  TaskScheduler sched(4);
  SkewCtx skew;
  skew.sched = &sched;
  const Task root{&SkewRootTask, &skew, 0, 0};
  const SchedulerRunStats stats = sched.Run(&root, 1);
  EXPECT_EQ(skew.executed.load(), 64u);
  // Liveness: the other three workers cannot get work any way but stealing.
  EXPECT_GE(stats.tasks_stolen, 1u);
  uint32_t distinct = 0;
  for (uint32_t w = 0; w < sched.num_workers(); ++w) {
    distinct += skew.worker_seen[w].load();
  }
  EXPECT_GE(distinct, 2u);
}

void ThrowingTask(void* /*ctx*/, uint32_t, uint32_t a, uint32_t) {
  if (a == 1) throw std::runtime_error("task failed");
}

TEST(TaskSchedulerTest, ExceptionPropagatesAndSchedulerStaysUsable) {
  for (uint32_t workers : {1u, 4u}) {
    TaskScheduler sched(workers);
    CountCtx ctx;
    std::vector<Task> roots;
    for (int i = 0; i < 16; ++i) roots.push_back(Task{&CountTask, &ctx, 0, 0});
    roots.push_back(Task{&ThrowingTask, nullptr, 1, 0});
    for (int i = 0; i < 16; ++i) roots.push_back(Task{&CountTask, &ctx, 0, 0});
    EXPECT_THROW(sched.Run(roots), std::runtime_error) << "workers=" << workers;
    // The graph still drained: every non-throwing task ran.
    EXPECT_EQ(ctx.executed.load(), 32u);
    // And the scheduler is reusable after a failed run.
    const SchedulerRunStats stats =
        sched.Run(std::vector<Task>(8, Task{&CountTask, &ctx, 0, 0}));
    EXPECT_EQ(stats.tasks_executed, 8u);
    EXPECT_EQ(ctx.executed.load(), 40u);
  }
}

TEST(TaskSchedulerTest, WorkerStateIsRetainedAcrossRuns) {
  TaskScheduler sched(2);
  int* state = sched.WorkerState<int>(0);
  *state = 41;
  CountCtx ctx;
  const Task root{&CountTask, &ctx, 0, 0};
  sched.Run(&root, 1);
  EXPECT_EQ(sched.WorkerState<int>(0), state);  // same slot, not recreated
  EXPECT_EQ(*sched.WorkerState<int>(0), 41);
}

TEST(TaskSchedulerTest, BorrowedPoolRunsAllTasks) {
  ThreadPool pool(3);
  TaskScheduler sched(&pool);
  EXPECT_EQ(sched.num_workers(), 3u);
  CountCtx ctx;
  std::vector<Task> roots(64, Task{&CountTask, &ctx, 0, 0});
  sched.Run(roots);
  EXPECT_EQ(ctx.executed.load(), 64u);
  // The borrowed pool is still a working pool afterwards.
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
}

// ---------------------------------------------------------------------------
// ThreadPool bulk submission and shutdown (the SubmitMany satellite).
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitManyDrainsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&done] { done.fetch_add(1); });
  }
  pool.SubmitMany(std::move(tasks));
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i) {
      tasks.push_back([&done] { done.fetch_add(1); });
    }
    pool.SubmitMany(std::move(tasks));
    // No Wait(): shutdown must still run everything already queued.
  }
  EXPECT_EQ(done.load(), 64);
}

// ---------------------------------------------------------------------------
// QueryBatch: chunked vs stealing equivalence.
// ---------------------------------------------------------------------------

struct Pipeline {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> certain;
  ProbabilisticMatrixIndex pmi;
  StructuralFilter filter;
};

Pipeline MakePipeline(uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = 15;
  options.avg_vertices = 8;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 3;
  options.seed = seed;
  Pipeline p;
  p.db = GenerateDatabase(options).value();
  for (const auto& g : p.db) p.certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.alpha = 0.0;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 500;
  build.sip.mc.max_samples = 500;
  p.pmi = ProbabilisticMatrixIndex::Build(p.db, build).value();
  p.filter = StructuralFilter::Build(p.certain, p.pmi.features());
  return p;
}

std::vector<Graph> MakeQueries(const Pipeline& p, uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<Graph> queries;
  while (queries.size() < count) {
    auto q = ExtractQuery(p.certain[rng.Uniform(p.certain.size())], 4, &rng);
    if (q.ok()) queries.push_back(std::move(q).value());
  }
  return queries;
}

QueryOptions FastOptions() {
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.4;
  options.verifier.mc.min_samples = 400;
  options.verifier.mc.max_samples = 400;
  return options;
}

TEST(StealingBatchTest, MatchesChunkedSchedulerAtEveryWidthAndGrain) {
  const Pipeline p = MakePipeline(3301);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeQueries(p, 3302, 8);
  const QueryOptions options = FastOptions();

  BatchOptions chunked;
  chunked.scheduler = BatchOptions::Scheduler::kChunked;
  chunked.num_threads = 1;
  const auto baseline = processor.QueryBatch(queries, options, chunked);

  for (uint32_t threads : {1u, 2u, 4u}) {
    for (uint32_t grain : {1u, 3u}) {
      BatchOptions batch;
      batch.scheduler = BatchOptions::Scheduler::kStealing;
      batch.num_threads = threads;
      batch.task_grain = grain;
      BatchStats stats;
      const auto results =
          processor.QueryBatch(queries, options, batch, &stats);
      ASSERT_EQ(results.size(), baseline.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].status.ok());
        EXPECT_EQ(results[i].answers, baseline[i].answers)
            << "query " << i << " threads=" << threads << " grain=" << grain;
        EXPECT_EQ(results[i].stats.verification_candidates,
                  baseline[i].stats.verification_candidates);
        EXPECT_EQ(results[i].stats.pruned_by_upper,
                  baseline[i].stats.pruned_by_upper);
        EXPECT_EQ(results[i].stats.accepted_by_lower,
                  baseline[i].stats.accepted_by_lower);
      }
      if (threads > 1) {
        // Front tasks + at least one verify task per verifying query.
        EXPECT_GE(stats.tasks_executed, queries.size());
        EXPECT_EQ(stats.threads_used, threads);
      }
    }
  }
}

TEST(StealingBatchTest, CallerOwnedSchedulerReusedAcrossBatches) {
  const Pipeline p = MakePipeline(3301);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeQueries(p, 3302, 6);
  const QueryOptions options = FastOptions();

  const auto baseline = processor.QueryBatch(queries, options);
  TaskScheduler sched(3);
  BatchOptions batch;
  batch.stealer = &sched;
  for (int round = 0; round < 2; ++round) {  // scheduler survives batches
    BatchStats stats;
    const auto results = processor.QueryBatch(queries, options, batch, &stats);
    ASSERT_EQ(results.size(), baseline.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok());
      EXPECT_EQ(results[i].answers, baseline[i].answers);
    }
    EXPECT_EQ(stats.threads_used, 3u);
    EXPECT_GE(stats.tasks_executed, queries.size());
  }
}

TEST(StealingBatchTest, SecondPassGrowsNoWorkerScratch) {
  // Extends the PR 3–5 no-allocation-growth pins to the scheduler-owned
  // per-worker scratch: after a warm-up batch, rerunning the same workload
  // must not grow the verifier scratch pool. Width 1 keeps the pin
  // deterministic (one worker sees every candidate, no steal schedule).
  const Pipeline p = MakePipeline(3401);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeQueries(p, 3402, 6);
  const QueryOptions options = FastOptions();

  TaskScheduler sched(1);
  BatchOptions batch;
  batch.stealer = &sched;
  const auto first = processor.QueryBatch(queries, options, batch);
  const size_t warm_words =
      sched.WorkerState<QueryContext>(0)->verifier_scratch.PoolCapacityWords();
  ASSERT_GT(warm_words, 0u);
  const auto second = processor.QueryBatch(queries, options, batch);
  EXPECT_EQ(
      sched.WorkerState<QueryContext>(0)->verifier_scratch.PoolCapacityWords(),
      warm_words);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].answers, second[i].answers);
  }
}

TEST(StealingBatchTest, ReportsQueueWaitAndOverlap) {
  const Pipeline p = MakePipeline(3501);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeQueries(p, 3502, 8);
  const QueryOptions options = FastOptions();

  BatchOptions batch;
  batch.num_threads = 2;
  BatchStats stats;
  const auto results = processor.QueryBatch(queries, options, batch, &stats);
  ASSERT_EQ(results.size(), queries.size());
  // Every query waited a measurable (possibly tiny) time for admission.
  EXPECT_GT(stats.sum_queue_wait_seconds, 0.0);
  for (const auto& r : results) {
    EXPECT_GE(r.stats.queue_wait_seconds, 0.0);
  }
}

}  // namespace
}  // namespace pgsim
