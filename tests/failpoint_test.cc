// Tests for the failpoint fault-injection framework: arming/one-shot
// semantics, skip counts, the PGSIM_FAILPOINTS parser, write-site
// torn/short-write handling, and site self-registration.
//
// Crash modes (_exit) cannot fire in-process; recovery_test covers them
// through its fork-kill matrix.

#include <gtest/gtest.h>

#include "pgsim/common/failpoint.h"

namespace pgsim {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointClearAll(); }
  void TearDown() override { FailpointClearAll(); }
};

TEST_F(FailpointTest, UnarmedSiteIsOk) {
  EXPECT_TRUE(FailpointCheck("fp_test.unarmed").ok());
  EXPECT_FALSE(FailpointAnyActive());
}

TEST_F(FailpointTest, ErrorModeFiresOnce) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  FailpointSet("fp_test.err", spec);
  EXPECT_TRUE(FailpointAnyActive());

  const Status s = FailpointCheck("fp_test.err");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // One-shot: the site disarmed when it fired.
  EXPECT_TRUE(FailpointCheck("fp_test.err").ok());
  EXPECT_FALSE(FailpointAnyActive());
}

TEST_F(FailpointTest, SkipCountDelaysFiring) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  spec.skip = 2;
  FailpointSet("fp_test.skip", spec);

  EXPECT_TRUE(FailpointCheck("fp_test.skip").ok());   // hit 1: skipped
  EXPECT_TRUE(FailpointCheck("fp_test.skip").ok());   // hit 2: skipped
  EXPECT_FALSE(FailpointCheck("fp_test.skip").ok());  // hit 3: fires
  EXPECT_TRUE(FailpointCheck("fp_test.skip").ok());   // disarmed
}

TEST_F(FailpointTest, ClearDisarms) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  FailpointSet("fp_test.clear", spec);
  FailpointClear("fp_test.clear");
  EXPECT_TRUE(FailpointCheck("fp_test.clear").ok());
  EXPECT_FALSE(FailpointAnyActive());
}

TEST_F(FailpointTest, ParserArmsMultipleEntries) {
  ASSERT_TRUE(
      FailpointSetFromString("fp_test.a=error;fp_test.b=short:12@1").ok());
  EXPECT_TRUE(FailpointAnyActive());
  EXPECT_FALSE(FailpointCheck("fp_test.a").ok());

  // fp_test.b: short-write, keep 12 bytes, skip 1 hit.
  FailpointSpec spec;
  Status error;
  EXPECT_FALSE(FailpointCheckWrite("fp_test.b", 100, &spec, &error));
  EXPECT_TRUE(error.ok());  // hit 1: skipped
  ASSERT_TRUE(FailpointCheckWrite("fp_test.b", 100, &spec, &error));
  EXPECT_EQ(spec.mode, FailpointMode::kShortWrite);
  EXPECT_EQ(spec.keep_bytes, 12u);
  const Status after = FailpointAfterPartialWrite("fp_test.b", spec);
  EXPECT_EQ(after.code(), StatusCode::kDataLoss);
}

TEST_F(FailpointTest, ParserRejectsMalformedEntries) {
  EXPECT_FALSE(FailpointSetFromString("fp_test.x").ok());          // no '='
  EXPECT_FALSE(FailpointSetFromString("fp_test.x=banana").ok());   // bad mode
  EXPECT_FALSE(FailpointSetFromString("fp_test.x=error:1z").ok()); // bad keep
  EXPECT_FALSE(FailpointSetFromString("fp_test.x=error@ ").ok());  // bad skip
  EXPECT_FALSE(FailpointSetFromString("=error").ok());             // no site
  // A bad entry arms nothing from itself, but prior entries stick.
  EXPECT_FALSE(FailpointSetFromString("fp_test.good=error;fp_test.bad=?").ok());
  EXPECT_FALSE(FailpointCheck("fp_test.good").ok());
  EXPECT_TRUE(FailpointCheck("fp_test.bad").ok());
}

TEST_F(FailpointTest, ShortWriteClampsKeepBytesToPayload) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kShortWrite;
  spec.keep_bytes = 1000;
  FailpointSet("fp_test.clamp", spec);
  FailpointSpec out;
  Status error;
  ASSERT_TRUE(FailpointCheckWrite("fp_test.clamp", 10, &out, &error));
  EXPECT_LE(out.keep_bytes, 10u);
}

TEST_F(FailpointTest, ErrorModeOnWriteSiteFiresThroughErrorOut) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  FailpointSet("fp_test.werr", spec);
  FailpointSpec out;
  Status error;
  EXPECT_FALSE(FailpointCheckWrite("fp_test.werr", 10, &out, &error));
  EXPECT_FALSE(error.ok());
}

TEST_F(FailpointTest, TornArmOnNonWriteSiteDegradesToError) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kTornWrite;
  FailpointSet("fp_test.nonwrite", spec);
  // FailpointCheck has no payload to tear, so the site must not crash: it
  // degrades to an injected error.
  EXPECT_FALSE(FailpointCheck("fp_test.nonwrite").ok());
}

TEST_F(FailpointTest, SitesSelfRegister) {
  (void)FailpointCheck("fp_test.registered.1");
  FailpointSpec spec;
  Status error;
  (void)FailpointCheckWrite("fp_test.registered.2", 4, &spec, &error);
  const auto sites = FailpointKnownSites();
  auto has = [&](const char* s) {
    for (const auto& site : sites) {
      if (site == s) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("fp_test.registered.1"));
  EXPECT_TRUE(has("fp_test.registered.2"));
}

TEST_F(FailpointTest, ArmIsProgrammaticSetWithHitAccounting) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  FailpointArm("fp_test.arm", spec);
  EXPECT_TRUE(FailpointAnyActive());
  EXPECT_EQ(FailpointHits("fp_test.arm"), 0u);

  EXPECT_FALSE(FailpointCheck("fp_test.arm").ok());
  EXPECT_EQ(FailpointHits("fp_test.arm"), 1u);
  // One-shot: disarmed after firing; further checks neither fire nor count.
  EXPECT_TRUE(FailpointCheck("fp_test.arm").ok());
  EXPECT_EQ(FailpointHits("fp_test.arm"), 1u);

  // Re-arming and firing again accumulates.
  FailpointArm("fp_test.arm", spec);
  EXPECT_FALSE(FailpointCheck("fp_test.arm").ok());
  EXPECT_EQ(FailpointHits("fp_test.arm"), 2u);
}

TEST_F(FailpointTest, SkippedHitsDoNotCount) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  spec.skip = 2;
  FailpointArm("fp_test.arm.skip", spec);
  EXPECT_TRUE(FailpointCheck("fp_test.arm.skip").ok());  // skipped
  EXPECT_TRUE(FailpointCheck("fp_test.arm.skip").ok());  // skipped
  EXPECT_EQ(FailpointHits("fp_test.arm.skip"), 0u);
  EXPECT_FALSE(FailpointCheck("fp_test.arm.skip").ok());  // fires
  EXPECT_EQ(FailpointHits("fp_test.arm.skip"), 1u);
}

TEST_F(FailpointTest, ResetAllDisarmsAndZeroesCounters) {
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  FailpointArm("fp_test.reset.a", spec);
  EXPECT_FALSE(FailpointCheck("fp_test.reset.a").ok());
  EXPECT_EQ(FailpointHits("fp_test.reset.a"), 1u);

  FailpointArm("fp_test.reset.b", spec);  // armed but never fired
  FailpointResetAll();
  EXPECT_FALSE(FailpointAnyActive());
  EXPECT_EQ(FailpointHits("fp_test.reset.a"), 0u);
  EXPECT_TRUE(FailpointCheck("fp_test.reset.b").ok());  // disarmed
}

}  // namespace
}  // namespace pgsim
