// Tests for the checksummed snapshot formats: the SnapshotWriter/Reader
// container, PMI3 and StructuralFilter round trips with byte-identical
// re-saves, legacy PMI2 loading, and — the robustness pin — a truncation
// sweep proving every proper prefix of every snapshot file is rejected with
// an error (never loaded as zeros), plus bit-flip detection.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/io.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/storage/io_util.h"

namespace pgsim {
namespace {

std::vector<ProbabilisticGraph> SmallDatabase(uint64_t seed, size_t n) {
  SyntheticOptions options;
  options.num_graphs = n;
  options.avg_vertices = 8;
  options.num_vertex_labels = 4;
  options.seed = seed;
  return GenerateDatabase(options).value();
}

PmiBuildOptions FastBuild() {
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 1000;
  build.sip.mc.max_samples = 1000;
  return build;
}

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotContainerTest, RoundTripsSections) {
  const std::string path = testing::TempDir() + "/pgsim_container.bin";
  SnapshotWriter writer(0x41424344u, 7);
  writer.AddSection("first");
  writer.AddSection("");  // empty sections are legal
  writer.AddSection(std::string("bin\0ary", 7));
  ASSERT_TRUE(writer.Commit(path, "snapshot.test").ok());

  auto reader = SnapshotReader::Open(path, 0x41424344u);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->version(), 7u);
  ASSERT_EQ(reader->num_sections(), 3u);
  EXPECT_EQ(reader->section(0), "first");
  EXPECT_EQ(reader->section(1), "");
  EXPECT_EQ(reader->section(2), std::string("bin\0ary", 7));

  // A different expected magic is InvalidArgument (wrong kind of file), not
  // DataLoss (damaged file).
  EXPECT_EQ(SnapshotReader::Open(path, 0x55555555u).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SnapshotContainerTest, EveryPrefixIsRejected) {
  const std::string path = testing::TempDir() + "/pgsim_container_trunc.bin";
  SnapshotWriter writer(0x41424344u, 1);
  writer.AddSection("some payload bytes");
  writer.AddSection("more payload");
  ASSERT_TRUE(writer.Commit(path, "snapshot.test").ok());
  const std::string full = Slurp(path);

  for (size_t cut = 0; cut < full.size(); ++cut) {
    Spit(path, full.substr(0, cut));
    auto reader = SnapshotReader::Open(path, 0x41424344u);
    ASSERT_FALSE(reader.ok()) << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path.c_str());
}

TEST(SnapshotContainerTest, EveryBitFlipIsDetected) {
  const std::string path = testing::TempDir() + "/pgsim_container_flip.bin";
  SnapshotWriter writer(0x41424344u, 1);
  writer.AddSection("payload under test");
  ASSERT_TRUE(writer.Commit(path, "snapshot.test").ok());
  const std::string full = Slurp(path);

  for (size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    Spit(path, bad);
    auto reader = SnapshotReader::Open(path, 0x41424344u);
    EXPECT_FALSE(reader.ok()) << "flip at byte " << i << " loaded";
  }
  std::remove(path.c_str());
}

TEST(PmiSnapshotTest, TruncationSweepNeverLoads) {
  const auto db = SmallDatabase(9001, 5);
  auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild()).value();
  const std::string path = testing::TempDir() + "/pgsim_pmi_sweep.bin";
  ASSERT_TRUE(pmi.Save(path).ok());
  const std::string full = Slurp(path);
  ASSERT_TRUE(ProbabilisticMatrixIndex::Load(path).ok());

  // Every proper prefix must be an error — truncated bounds loaded as zeros
  // would silently pass wrong graphs through the pruning stage.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Spit(path, full.substr(0, cut));
    auto loaded = ProbabilisticMatrixIndex::Load(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path.c_str());
}

TEST(PmiSnapshotTest, BitFlipIsDataLoss) {
  const auto db = SmallDatabase(9011, 4);
  auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild()).value();
  const std::string path = testing::TempDir() + "/pgsim_pmi_flip.bin";
  ASSERT_TRUE(pmi.Save(path).ok());
  std::string bytes = Slurp(path);
  // Flip a byte in the middle of the column data.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  Spit(path, bytes);
  auto loaded = ProbabilisticMatrixIndex::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

// Writes a legacy PMI2 file (flat stream: magic, counts, features, columns,
// epoch/alive/beta/adds/removes trailer — no checksums) equivalent to
// `pmi`'s state, byte-compatible with the pre-PMI3 Save.
void WriteLegacyPmi2(const std::string& path,
                     const ProbabilisticMatrixIndex& pmi, uint64_t epoch,
                     const std::vector<uint8_t>& alive) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  WriteU32(os, 0x504d4932u);  // "PMI2"
  WriteU32(os, static_cast<uint32_t>(pmi.features().size()));
  WriteU32(os, pmi.num_graphs());
  for (const Feature& f : pmi.features()) {
    WriteGraph(os, f.graph);
    WriteU32(os, static_cast<uint32_t>(f.support.size()));
    for (uint32_t gi : f.support) WriteU32(os, gi);
    WriteDouble(os, f.frequency);
    WriteDouble(os, f.discriminative);
    WriteU32(os, f.level);
  }
  for (uint32_t gi = 0; gi < pmi.num_graphs(); ++gi) {
    const auto column = pmi.EntriesFor(gi);
    WriteU32(os, static_cast<uint32_t>(column.size()));
    for (const PmiEntry& e : column) {
      WriteU32(os, e.feature_id);
      WriteDouble(os, e.lower_opt);
      WriteDouble(os, e.upper_opt);
      WriteDouble(os, e.lower_simple);
      WriteDouble(os, e.upper_simple);
    }
  }
  WriteU64(os, epoch);
  for (uint32_t gi = 0; gi < pmi.num_graphs(); ++gi) {
    os.put(alive[gi] ? '\1' : '\0');
  }
  WriteDouble(os, 0.2);
  WriteU64(os, 0);
  WriteU64(os, 0);
}

TEST(PmiSnapshotTest, LegacyPmi2StillLoads) {
  const auto db = SmallDatabase(9021, 4);
  auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild()).value();
  const std::string path = testing::TempDir() + "/pgsim_pmi2_legacy.bin";
  std::vector<uint8_t> alive(pmi.num_graphs(), 1);
  alive[2] = 0;
  WriteLegacyPmi2(path, pmi, /*epoch=*/5, alive);

  auto loaded = ProbabilisticMatrixIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_graphs(), pmi.num_graphs());
  EXPECT_EQ(loaded->epoch(), 5u);
  EXPECT_FALSE(loaded->IsAlive(2));
  EXPECT_EQ(loaded->num_alive(), pmi.num_graphs() - 1);
  for (uint32_t gi = 0; gi < pmi.num_graphs(); ++gi) {
    if (gi == 2) continue;
    const auto a = pmi.EntriesFor(gi);
    const auto b = loaded->EntriesFor(gi);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].feature_id, b[k].feature_id);
      EXPECT_FLOAT_EQ(a[k].upper_opt, b[k].upper_opt);
    }
  }
  std::remove(path.c_str());
}

TEST(PmiSnapshotTest, LegacyPmi2TruncationSweepNeverLoads) {
  const auto db = SmallDatabase(9031, 3);
  auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild()).value();
  const std::string path = testing::TempDir() + "/pgsim_pmi2_sweep.bin";
  WriteLegacyPmi2(path, pmi, 0, std::vector<uint8_t>(pmi.num_graphs(), 1));
  const std::string full = Slurp(path);
  ASSERT_TRUE(ProbabilisticMatrixIndex::Load(path).ok());

  // Legacy files have no checksums, but truncation must still surface as an
  // error from the field readers — never as silently-zero trailing state.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Spit(path, full.substr(0, cut));
    auto loaded = ProbabilisticMatrixIndex::Load(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path.c_str());
}

struct FilterSetup {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
};

FilterSetup BuildFilter(uint64_t seed, size_t n) {
  FilterSetup s;
  s.db = SmallDatabase(seed, n);
  s.pmi = ProbabilisticMatrixIndex::Build(s.db, FastBuild()).value();
  for (const auto& g : s.db) s.certain.push_back(g.certain());
  StructuralFilterOptions options;
  options.exact_check = true;
  s.filter = StructuralFilter::Build(s.certain, s.pmi.features(), options);
  return s;
}

TEST(FilterSnapshotTest, SaveLoadPreservesStateAndResaveIsByteIdentical) {
  FilterSetup s = BuildFilter(9041, 6);
  const std::string path1 = testing::TempDir() + "/pgsim_filter_1.bin";
  const std::string path2 = testing::TempDir() + "/pgsim_filter_2.bin";
  ASSERT_TRUE(s.filter.Save(path1).ok());

  auto loaded = StructuralFilter::Load(path1, s.certain, s.pmi.features());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_graphs(), s.filter.num_graphs());
  EXPECT_EQ(loaded->num_alive(), s.filter.num_alive());
  ASSERT_EQ(loaded->num_features(), s.filter.num_features());
  for (uint32_t fi = 0; fi < s.filter.num_features(); ++fi) {
    for (uint32_t gi = 0; gi < s.filter.num_graphs(); ++gi) {
      EXPECT_EQ(loaded->CountAt(fi, gi), s.filter.CountAt(fi, gi))
          << "cell (" << fi << ", " << gi << ")";
    }
  }
  // The loaded filter filters identically.
  const Graph& q = s.certain[1];
  const std::vector<Graph> relaxed = {q};
  EXPECT_EQ(loaded->Filter(q, relaxed, 0), s.filter.Filter(q, relaxed, 0));

  ASSERT_TRUE(loaded->Save(path2).ok());
  EXPECT_EQ(Slurp(path1), Slurp(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(FilterSnapshotTest, TruncationSweepNeverLoads) {
  FilterSetup s = BuildFilter(9043, 4);
  const std::string path = testing::TempDir() + "/pgsim_filter_sweep.bin";
  ASSERT_TRUE(s.filter.Save(path).ok());
  const std::string full = Slurp(path);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Spit(path, full.substr(0, cut));
    auto loaded = StructuralFilter::Load(path, s.certain, s.pmi.features());
    ASSERT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path.c_str());
}

TEST(FilterSnapshotTest, MismatchedDatabaseIsRejected) {
  FilterSetup s = BuildFilter(9047, 5);
  const std::string path = testing::TempDir() + "/pgsim_filter_mismatch.bin";
  ASSERT_TRUE(s.filter.Save(path).ok());
  // Wrong graph count: rebinding would index out of range.
  std::vector<Graph> fewer(s.certain.begin(), s.certain.end() - 1);
  auto loaded = StructuralFilter::Load(path, fewer, s.pmi.features());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  // Wrong feature count likewise.
  std::vector<Feature> fewer_features(s.pmi.features().begin(),
                                      s.pmi.features().end() - 1);
  auto loaded2 = StructuralFilter::Load(path, s.certain, fewer_features);
  ASSERT_FALSE(loaded2.ok());
  EXPECT_EQ(loaded2.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pgsim
