// Tests of the batched parallel query engine: QueryBatch must return
// bit-identical answers (and identical deterministic counters) to sequential
// Query calls at any thread count, QueryContext reuse must not leak state
// between queries, and the ThreadPool must cover ranges exactly once.

#include <atomic>
#include <gtest/gtest.h>

#include "pgsim/common/thread_pool.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

struct Pipeline {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> certain;
  ProbabilisticMatrixIndex pmi;
  StructuralFilter filter;
};

Pipeline MakePipeline(uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = 15;
  options.avg_vertices = 8;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 3;
  options.seed = seed;
  Pipeline p;
  p.db = GenerateDatabase(options).value();
  for (const auto& g : p.db) p.certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.alpha = 0.0;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 500;
  build.sip.mc.max_samples = 500;
  p.pmi = ProbabilisticMatrixIndex::Build(p.db, build).value();
  p.filter = StructuralFilter::Build(p.certain, p.pmi.features());
  return p;
}

std::vector<Graph> MakeQueries(const Pipeline& p, uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<Graph> queries;
  while (queries.size() < count) {
    auto q = ExtractQuery(p.certain[rng.Uniform(p.certain.size())], 4, &rng);
    if (q.ok()) queries.push_back(std::move(q).value());
  }
  return queries;
}

QueryOptions FastOptions() {
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.4;
  options.verifier.mc.min_samples = 400;
  options.verifier.mc.max_samples = 400;
  return options;
}

TEST(QueryBatchTest, MatchesSequentialQueryAtAnyThreadCount) {
  const Pipeline p = MakePipeline(2201);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeQueries(p, 2202, 8);
  const QueryOptions options = FastOptions();

  std::vector<std::vector<uint32_t>> sequential;
  std::vector<QueryStats> sequential_stats(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto answers = processor.Query(queries[i], options, &sequential_stats[i]);
    ASSERT_TRUE(answers.ok());
    sequential.push_back(std::move(answers).value());
  }

  for (uint32_t threads : {1u, 2u, 4u}) {
    BatchOptions batch;
    batch.num_threads = threads;
    batch.chunk_size = 2;
    BatchStats stats;
    const auto results = processor.QueryBatch(queries, options, batch, &stats);
    ASSERT_EQ(results.size(), queries.size());
    size_t expected_answers = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok()) << "threads=" << threads;
      // Bit-identical answer sets: same ids, same order.
      EXPECT_EQ(results[i].answers, sequential[i])
          << "query " << i << " at threads=" << threads;
      // Deterministic pipeline counters must match too.
      EXPECT_EQ(results[i].stats.structural_candidates,
                sequential_stats[i].structural_candidates);
      EXPECT_EQ(results[i].stats.verification_candidates,
                sequential_stats[i].verification_candidates);
      EXPECT_EQ(results[i].stats.pruned_by_upper,
                sequential_stats[i].pruned_by_upper);
      EXPECT_EQ(results[i].stats.accepted_by_lower,
                sequential_stats[i].accepted_by_lower);
      expected_answers += sequential[i].size();
    }
    EXPECT_EQ(stats.num_queries, queries.size());
    EXPECT_EQ(stats.failed_queries, 0u);
    EXPECT_EQ(stats.total_answers, expected_answers);
    EXPECT_EQ(stats.threads_used, threads);
    EXPECT_GT(stats.wall_seconds, 0.0);
  }
}

TEST(QueryBatchTest, CallerOwnedPoolMatchesTransientPool) {
  const Pipeline p = MakePipeline(2201);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeQueries(p, 2202, 6);
  const QueryOptions options = FastOptions();

  const auto baseline = processor.QueryBatch(queries, options);
  ThreadPool pool(3);
  BatchOptions batch;
  batch.pool = &pool;
  for (int round = 0; round < 2; ++round) {  // pool survives across batches
    BatchStats stats;
    const auto results = processor.QueryBatch(queries, options, batch, &stats);
    ASSERT_EQ(results.size(), baseline.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok());
      EXPECT_EQ(results[i].answers, baseline[i].answers);
    }
    EXPECT_EQ(stats.threads_used, 3u);
  }
}

TEST(QueryBatchTest, ReusedContextMatchesFreshContexts) {
  const Pipeline p = MakePipeline(2301);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeQueries(p, 2302, 6);
  const QueryOptions options = FastOptions();

  QueryContext reused;
  for (const Graph& q : queries) {
    auto with_reuse = processor.Query(q, options, &reused);
    auto fresh = processor.Query(q, options);
    ASSERT_TRUE(with_reuse.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(*with_reuse, *fresh);
  }
}

TEST(QueryBatchTest, TrivialDeltaReturnsWholeDatabase) {
  const Pipeline p = MakePipeline(2401);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  std::vector<Graph> queries = MakeQueries(p, 2402, 3);
  QueryOptions options = FastOptions();
  options.delta = 1000;  // >= |E(q)|: every graph is an answer
  const auto results = processor.QueryBatch(queries, options);
  for (const auto& r : results) {
    ASSERT_TRUE(r.status.ok());
    ASSERT_EQ(r.answers.size(), p.db.size());
    for (uint32_t i = 0; i < p.db.size(); ++i) EXPECT_EQ(r.answers[i], i);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, 7, [&](uint32_t rank, size_t begin, size_t end) {
    EXPECT_LT(rank, 4u);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1u) << i;
}

TEST(ThreadPoolTest, SubmitAndWaitDrainsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 4, [&](uint32_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace pgsim
