// Tests for the clique-tree inference engine: partition functions, exact
// marginals against brute-force enumeration, RIP validation, and conditional
// sampling.

#include <cmath>

#include <gtest/gtest.h>

#include "pgsim/common/random.h"
#include "pgsim/prob/clique_tree.h"

namespace pgsim {
namespace {

CliqueFactor MakeFactor(std::vector<uint32_t> vars,
                        std::vector<double> weights) {
  CliqueFactor f;
  f.vars = std::move(vars);
  f.table = JointProbTable::FromWeights(std::move(weights)).value();
  return f;
}

// Brute-force joint: prod of factors over all assignments.
double BruteZ(uint32_t num_vars, const std::vector<CliqueFactor>& factors,
              uint32_t care_mask = 0, uint32_t value_mask = 0) {
  double z = 0.0;
  for (uint32_t assignment = 0; assignment < (1U << num_vars); ++assignment) {
    if ((assignment & care_mask) != (value_mask & care_mask)) continue;
    double w = 1.0;
    for (const auto& f : factors) {
      uint32_t local = 0;
      for (size_t j = 0; j < f.vars.size(); ++j) {
        if ((assignment >> f.vars[j]) & 1U) local |= (1U << j);
      }
      w *= f.table.Prob(local);
    }
    z += w;
  }
  return z;
}

EdgeBitset MaskToBitset(uint32_t num_vars, uint32_t mask) {
  EdgeBitset b(num_vars);
  for (uint32_t i = 0; i < num_vars; ++i) {
    if ((mask >> i) & 1U) b.Set(i);
  }
  return b;
}

TEST(CliqueTreeTest, DisjointFactorsHaveUnitZ) {
  auto tree = CliqueTree::Build(
      4, {MakeFactor({0, 1}, {1, 1, 1, 1}), MakeFactor({2, 3}, {1, 2, 3, 4})});
  ASSERT_TRUE(tree.ok());
  EXPECT_NEAR(tree->Z(), 1.0, 1e-12);
}

TEST(CliqueTreeTest, RejectsUncoveredVariable) {
  auto tree = CliqueTree::Build(3, {MakeFactor({0, 1}, {1, 1, 1, 1})});
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
}

TEST(CliqueTreeTest, RejectsDuplicateVarsInFactor) {
  auto tree = CliqueTree::Build(2, {MakeFactor({0, 0}, {1, 1, 1, 1}),
                                    MakeFactor({1}, {1, 1})});
  EXPECT_FALSE(tree.ok());
}

TEST(CliqueTreeTest, RejectsArityMismatch) {
  CliqueFactor f;
  f.vars = {0, 1};
  f.table = JointProbTable::FromWeights({0.5, 0.5}).value();  // arity 1
  auto tree = CliqueTree::Build(2, {std::move(f)});
  EXPECT_FALSE(tree.ok());
}

TEST(CliqueTreeTest, RejectsRipViolation) {
  // Three factors sharing variables in a cycle that cannot satisfy RIP:
  // {0,1}, {1,2}, {2,0} — the spanning tree keeps only two of the three
  // links, and the dropped pair's shared variable spans disconnected nodes.
  auto tree = CliqueTree::Build(
      3, {MakeFactor({0, 1}, {1, 1, 1, 1}), MakeFactor({1, 2}, {1, 1, 1, 1}),
          MakeFactor({2, 0}, {1, 1, 1, 1})});
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
}

TEST(CliqueTreeTest, ChainMarginalsMatchBruteForce) {
  // Paper-style chain: {e0,e1,e2} and {e2,e3,e4} share e2 (Figure 1's 002).
  Rng rng(61);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> w1(8), w2(8);
    for (auto& w : w1) w = 0.05 + rng.UniformDouble();
    for (auto& w : w2) w = 0.05 + rng.UniformDouble();
    std::vector<CliqueFactor> factors{MakeFactor({0, 1, 2}, w1),
                                      MakeFactor({2, 3, 4}, w2)};
    auto tree = CliqueTree::Build(5, factors);
    ASSERT_TRUE(tree.ok());
    const double z = BruteZ(5, factors);
    EXPECT_NEAR(tree->Z(), z, 1e-9);
    // Check several conditional events.
    for (uint32_t care : {0b00001u, 0b10100u, 0b11111u, 0b01010u}) {
      for (uint32_t value : {care, 0u, care & 0b10101u}) {
        const double expected = BruteZ(5, factors, care, value) / z;
        const double actual = tree->Probability(MaskToBitset(5, care),
                                                MaskToBitset(5, value));
        EXPECT_NEAR(actual, expected, 1e-9);
      }
    }
  }
}

TEST(CliqueTreeTest, DeepChainAndStarStructures) {
  Rng rng(67);
  // Chain of four 2-var factors: {0,1},{1,2},{2,3},{3,4}.
  {
    std::vector<CliqueFactor> factors;
    for (uint32_t i = 0; i < 4; ++i) {
      std::vector<double> w(4);
      for (auto& x : w) x = 0.1 + rng.UniformDouble();
      factors.push_back(MakeFactor({i, i + 1}, w));
    }
    auto tree = CliqueTree::Build(5, factors);
    ASSERT_TRUE(tree.ok());
    EXPECT_NEAR(tree->Z(), BruteZ(5, factors), 1e-9);
  }
  // Star: center factor {0,1,2} with leaves {0,3} and {1,4}.
  {
    std::vector<double> w0(8), w1(4), w2(4);
    for (auto& x : w0) x = 0.1 + rng.UniformDouble();
    for (auto& x : w1) x = 0.1 + rng.UniformDouble();
    for (auto& x : w2) x = 0.1 + rng.UniformDouble();
    std::vector<CliqueFactor> factors{MakeFactor({0, 1, 2}, w0),
                                      MakeFactor({0, 3}, w1),
                                      MakeFactor({1, 4}, w2)};
    auto tree = CliqueTree::Build(5, factors);
    ASSERT_TRUE(tree.ok());
    EXPECT_NEAR(tree->Z(), BruteZ(5, factors), 1e-9);
    const uint32_t care = 0b11000, value = 0b01000;
    EXPECT_NEAR(tree->Probability(MaskToBitset(5, care),
                                  MaskToBitset(5, value)),
                BruteZ(5, factors, care, value) / BruteZ(5, factors), 1e-9);
  }
}

TEST(CliqueTreeTest, WorldWeightMatchesFactorProduct) {
  std::vector<CliqueFactor> factors{MakeFactor({0, 1}, {1, 2, 3, 4}),
                                    MakeFactor({1, 2}, {4, 3, 2, 1})};
  auto tree = CliqueTree::Build(3, factors);
  ASSERT_TRUE(tree.ok());
  for (uint32_t world = 0; world < 8; ++world) {
    const double expected = BruteZ(3, factors, 0b111, world);
    EXPECT_NEAR(tree->WorldWeight(MaskToBitset(3, world)), expected, 1e-12);
    EXPECT_NEAR(tree->WorldProbability(MaskToBitset(3, world)),
                expected / tree->Z(), 1e-12);
  }
}

TEST(CliqueTreeTest, SamplingMatchesJoint) {
  Rng rng(71);
  std::vector<double> w1(8), w2(8);
  for (auto& w : w1) w = 0.05 + rng.UniformDouble();
  for (auto& w : w2) w = 0.05 + rng.UniformDouble();
  std::vector<CliqueFactor> factors{MakeFactor({0, 1, 2}, w1),
                                    MakeFactor({2, 3, 4}, w2)};
  auto tree = CliqueTree::Build(5, factors);
  ASSERT_TRUE(tree.ok());
  std::vector<int> counts(32, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const EdgeBitset world = tree->Sample(&rng);
    uint32_t mask = 0;
    for (uint32_t v = 0; v < 5; ++v) {
      if (world.Test(v)) mask |= (1U << v);
    }
    ++counts[mask];
  }
  for (uint32_t mask = 0; mask < 32; ++mask) {
    const double expected = tree->WorldProbability(MaskToBitset(5, mask));
    EXPECT_NEAR(counts[mask] / static_cast<double>(n), expected, 0.01);
  }
}

TEST(CliqueTreeTest, ConditionalSamplingRespectsEvidence) {
  Rng rng(73);
  std::vector<double> w1(8), w2(8);
  for (auto& w : w1) w = 0.05 + rng.UniformDouble();
  for (auto& w : w2) w = 0.05 + rng.UniformDouble();
  auto tree = CliqueTree::Build(5, {MakeFactor({0, 1, 2}, w1),
                                    MakeFactor({2, 3, 4}, w2)});
  ASSERT_TRUE(tree.ok());
  // Evidence: var 2 present, var 4 absent.
  EdgeBitset care = MaskToBitset(5, 0b10100);
  EdgeBitset value = MaskToBitset(5, 0b00100);
  int count_v0 = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    auto world = tree->SampleConditioned(&rng, care, value);
    ASSERT_TRUE(world.ok());
    ASSERT_TRUE(world->Test(2));
    ASSERT_FALSE(world->Test(4));
    if (world->Test(0)) ++count_v0;
  }
  // Compare against the exact conditional Pr(v0 | evidence).
  EdgeBitset care_all = MaskToBitset(5, 0b10101);
  EdgeBitset value_v0 = MaskToBitset(5, 0b00101);
  const double expected = tree->Partition(care_all, value_v0) /
                          tree->Partition(care, value);
  EXPECT_NEAR(count_v0 / static_cast<double>(n), expected, 0.015);
}

TEST(CliqueTreeTest, ConditionalSamplingFailsOnZeroMassEvidence) {
  // Factor forbids var0 = 1.
  auto tree = CliqueTree::Build(1, {MakeFactor({0}, {1.0, 0.0})});
  ASSERT_TRUE(tree.ok());
  Rng rng(79);
  EdgeBitset care(1), value(1);
  care.Set(0);
  value.Set(0);
  EXPECT_FALSE(tree->SampleConditioned(&rng, care, value).ok());
}

}  // namespace
}  // namespace pgsim
