// Tests for Algorithm 1 (greedy weighted set cover).

#include <cmath>

#include <gtest/gtest.h>

#include "pgsim/query/set_cover.h"

namespace pgsim {
namespace {

WeightedSet Make(uint32_t id, std::vector<uint32_t> elements, double w) {
  WeightedSet s;
  s.id = id;
  s.elements = std::move(elements);
  s.weight = w;
  return s;
}

TEST(SetCoverTest, EmptyUniverseIsCoveredForFree) {
  const auto result = GreedyWeightedSetCover(0, {});
  EXPECT_TRUE(result.covered);
  EXPECT_EQ(result.total_weight, 0.0);
  EXPECT_TRUE(result.chosen_ids.empty());
}

TEST(SetCoverTest, PaperExample3) {
  // Figure 5: s1 = {rq1, rq2} w=0.4, s2 = {rq2, rq3} w=0.1,
  // s3 = {rq1, rq3} w=0.5. Candidate covers: 0.4+0.1=0.5, 0.4+0.5=0.9,
  // 0.1+0.5=0.6; the greedy ratio rule picks s2 (0.05/elem) then s1, giving
  // the optimal Usim = 0.5 the paper reports.
  const std::vector<WeightedSet> sets{Make(1, {0, 1}, 0.4),
                                      Make(2, {1, 2}, 0.1),
                                      Make(3, {0, 2}, 0.5)};
  const auto result = GreedyWeightedSetCover(3, sets);
  EXPECT_TRUE(result.covered);
  EXPECT_NEAR(result.total_weight, 0.5, 1e-12);
  EXPECT_EQ(result.chosen_ids.size(), 2u);
}

TEST(SetCoverTest, UncoverableElementsReported) {
  const std::vector<WeightedSet> sets{Make(0, {0, 1}, 0.2)};
  const auto result = GreedyWeightedSetCover(4, sets);
  EXPECT_FALSE(result.covered);
  EXPECT_EQ(result.num_uncovered, 2u);
  EXPECT_NEAR(result.total_weight, 0.2, 1e-12);
}

TEST(SetCoverTest, ZeroWeightSetsPreferred) {
  // A zero-weight set covering everything should always be chosen alone.
  const std::vector<WeightedSet> sets{Make(0, {0, 1, 2}, 0.0),
                                      Make(1, {0}, 0.5),
                                      Make(2, {1, 2}, 0.5)};
  const auto result = GreedyWeightedSetCover(3, sets);
  EXPECT_TRUE(result.covered);
  EXPECT_EQ(result.total_weight, 0.0);
  EXPECT_EQ(result.chosen_ids, (std::vector<uint32_t>{0}));
}

TEST(SetCoverTest, RedundantSetsSkipped) {
  // Once the universe is covered, no further sets are added.
  const std::vector<WeightedSet> sets{Make(0, {0, 1}, 0.1),
                                      Make(1, {0, 1}, 0.2),
                                      Make(2, {0}, 0.05)};
  const auto result = GreedyWeightedSetCover(2, sets);
  EXPECT_TRUE(result.covered);
  EXPECT_NEAR(result.total_weight, 0.1, 1e-12);
  EXPECT_EQ(result.chosen_ids.size(), 1u);
}

TEST(SetCoverTest, OutOfRangeElementsIgnored) {
  const std::vector<WeightedSet> sets{Make(0, {0, 99}, 0.3)};
  const auto result = GreedyWeightedSetCover(1, sets);
  EXPECT_TRUE(result.covered);
  EXPECT_NEAR(result.total_weight, 0.3, 1e-12);
}

TEST(SetCoverTest, GreedyWithinLogFactorOnKnownHardCase) {
  // Classic greedy-vs-optimal gap instance: elements 0..5; optimal picks two
  // sets of weight 1 each; greedy may pay more but never more than
  // OPT * ln|U| (Algorithm 1's guarantee from [12]).
  const std::vector<WeightedSet> sets{
      Make(0, {0, 1, 2}, 1.0), Make(1, {3, 4, 5}, 1.0),
      Make(2, {0, 3}, 0.62),   Make(3, {1, 4}, 0.62),
      Make(4, {2, 5}, 0.62)};
  const auto result = GreedyWeightedSetCover(6, sets);
  EXPECT_TRUE(result.covered);
  const double opt = 2.0;
  EXPECT_LE(result.total_weight, opt * std::log(6.0) + 1e-9);
}

}  // namespace
}  // namespace pgsim
