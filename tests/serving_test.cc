// Tests for the always-on serving core: golden re-sweep against QueryBatch
// (undeadlined queries stay bit-identical), deadline behavior (hard
// kDeadlineExceeded vs anytime degraded answers), deterministic cooperative
// cancellation (same seed + same cancel point => byte-identical partial
// intervals across runs AND scheduler widths), overload shedding with
// priority-aware eviction and retry-after hints, mutation interleaving with
// epoch correctness, the admission-path answer cache, and the
// degraded-results-are-never-cached guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/answer_cache.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/serving/serving_core.h"

namespace pgsim {
namespace {

struct ServeSetup {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
};

ServeSetup BuildServeSetup(uint64_t seed, size_t n) {
  ServeSetup s;
  SyntheticOptions gen;
  gen.num_graphs = n;
  gen.avg_vertices = 9;
  gen.num_vertex_labels = 4;
  gen.seed = seed;
  s.db = GenerateDatabase(gen).value();
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 2000;
  build.sip.mc.max_samples = 2000;
  s.pmi = ProbabilisticMatrixIndex::Build(s.db, build).value();
  for (const auto& g : s.db) s.certain.push_back(g.certain());
  s.filter = StructuralFilter::Build(s.certain, s.pmi.features(),
                                     StructuralFilterOptions());
  return s;
}

QueryOptions ServeQueryOptions() {
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.3;
  options.seed = 11;
  return options;
}

ProbabilisticGraph ExtraGraph(uint64_t seed) {
  SyntheticOptions gen;
  gen.num_graphs = 1;
  gen.avg_vertices = 9;
  gen.num_vertex_labels = 4;
  gen.seed = seed;
  return GenerateDatabase(gen).value()[0];
}

// --- Golden re-sweep: the serving path is answer-preserving -----------------

TEST(ServingCoreTest, UndeadlinedQueriesMatchQueryBatchAtEveryWidth) {
  ServeSetup s = BuildServeSetup(9001, 8);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  const QueryOptions options = ServeQueryOptions();
  const std::vector<Graph> queries = {s.db[0].certain(), s.db[3].certain(),
                                      s.db[6].certain()};

  BatchOptions batch;
  batch.num_threads = 1;
  const auto golden = processor.QueryBatch(queries, options, batch);
  ASSERT_EQ(golden.size(), queries.size());
  for (const auto& r : golden) ASSERT_TRUE(r.status.ok());

  for (uint32_t width : {1u, 2u, 4u}) {
    ServingOptions so;
    so.num_threads = width;
    so.query = options;
    ServingCore core(&processor, so);
    std::vector<QueryTicket> tickets;
    for (const auto& q : queries) tickets.push_back(core.Submit(q));
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const ServeResult& r = tickets[qi].Wait();
      ASSERT_TRUE(r.status.ok()) << "width " << width << " query " << qi;
      EXPECT_FALSE(r.degraded);
      EXPECT_EQ(r.answers, golden[qi].answers)
          << "width " << width << " query " << qi;
      EXPECT_EQ(r.epoch, processor.epoch());
    }
    core.Shutdown();
    const ServingStats st = core.stats();
    EXPECT_EQ(st.submitted, queries.size());
    EXPECT_EQ(st.completed, queries.size());
    EXPECT_EQ(st.double_resolves, 0u);
  }
}

// --- Deadlines ---------------------------------------------------------------

TEST(ServingCoreTest, ExpiredDeadlineResolvesDeadlineExceeded) {
  ServeSetup s = BuildServeSetup(9007, 6);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  ServingOptions so;
  so.num_threads = 1;
  so.query = ServeQueryOptions();
  ServingCore core(&processor, so);

  // deadline_ms = 0 is expired on (or immediately after) arrival; without
  // allow_degraded the only legal outcome is kDeadlineExceeded, whether the
  // DOA check or the first cancellation point catches it.
  SubmitOptions opts;
  opts.deadline_ms = 0;
  QueryTicket t = core.Submit(s.db[0].certain(), opts);
  const ServeResult& r = t.Wait();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.answers.empty());
  core.Shutdown();
  EXPECT_EQ(core.stats().deadline_exceeded, 1u);
  EXPECT_EQ(core.stats().double_resolves, 0u);
}

TEST(ServingCoreTest, CancelledTicketWithAllowDegradedResolvesOk) {
  ServeSetup s = BuildServeSetup(9011, 6);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  ServingOptions so;
  so.num_threads = 1;
  so.query = ServeQueryOptions();
  ServingCore core(&processor, so);

  // A deterministic cancel point (first draw of every candidate) with
  // allow_degraded: the ticket must resolve OK with the anytime answer.
  SubmitOptions opts;
  opts.allow_degraded = true;
  opts.cancel_after_draws = 1;
  QueryTicket t = core.Submit(s.db[0].certain(), opts);
  const ServeResult& r = t.Wait();
  ASSERT_TRUE(r.status.ok());
  // Self-query at delta=1 has verification candidates (pinned by the golden
  // pipeline), so at least one candidate was cut off mid-sampling.
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.intervals.empty());
  for (const auto& ia : r.intervals) {
    EXPECT_LE(0.0, ia.lo);
    EXPECT_LE(ia.lo, ia.hi);
    EXPECT_LE(ia.hi, 1.0);
    EXPECT_LE(ia.lo, ia.estimate);
    EXPECT_LE(ia.estimate, ia.hi);
    EXPECT_EQ(ia.samples, 1u);
  }
  core.Shutdown();
  EXPECT_EQ(core.stats().degraded, 1u);
}

TEST(ServingCoreTest, WallClockDeadlineResolvesWithinBound) {
  ServeSetup s = BuildServeSetup(9013, 6);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  ServingOptions so;
  so.num_threads = 2;
  so.query = ServeQueryOptions();
  ServingCore core(&processor, so);

  SubmitOptions opts;
  opts.deadline_ms = 1;
  opts.allow_degraded = true;
  QueryTicket t = core.Submit(s.db[2].certain(), opts);
  const ServeResult& r = t.Wait();
  // Three legal outcomes: finished before the deadline (exact), cancelled
  // mid-flight (degraded), or dead on arrival (kDeadlineExceeded — the DOA
  // path has no partial work to degrade to). Never anything else.
  if (r.status.ok()) {
    SUCCEED();
  } else {
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  }
  core.Shutdown();
  EXPECT_EQ(core.stats().double_resolves, 0u);
}

// --- Deterministic cancellation (satellite: reproducible anytime answers) ---

TEST(ServingCoreTest, CancelPointAnswersAreByteIdenticalAcrossRunsAndWidths) {
  ServeSetup s = BuildServeSetup(9017, 8);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  const QueryOptions options = ServeQueryOptions();
  const Graph query = s.db[1].certain();

  SubmitOptions opts;
  opts.allow_degraded = true;
  opts.cancel_after_draws = 7;

  auto run_once = [&](uint32_t width) {
    ServingOptions so;
    so.num_threads = width;
    so.query = options;
    ServingCore core(&processor, so);
    QueryTicket t = core.Submit(query, opts);
    ServeResult r = t.Wait();  // copy before the core dies
    core.Shutdown();
    EXPECT_TRUE(r.status.ok());
    return r;
  };

  const ServeResult base = run_once(1);
  for (uint32_t width : {1u, 4u}) {
    for (int rep = 0; rep < 2; ++rep) {
      const ServeResult r = run_once(width);
      EXPECT_EQ(r.degraded, base.degraded)
          << "width " << width << " rep " << rep;
      EXPECT_EQ(r.answers, base.answers);
      ASSERT_EQ(r.intervals.size(), base.intervals.size());
      for (size_t i = 0; i < r.intervals.size(); ++i) {
        EXPECT_EQ(r.intervals[i].graph_id, base.intervals[i].graph_id);
        // Byte-identical, not approximately equal: the per-candidate RNGs
        // are pre-forked, so the draw sequence cannot depend on scheduling.
        EXPECT_EQ(r.intervals[i].estimate, base.intervals[i].estimate);
        EXPECT_EQ(r.intervals[i].lo, base.intervals[i].lo);
        EXPECT_EQ(r.intervals[i].hi, base.intervals[i].hi);
        EXPECT_EQ(r.intervals[i].samples, base.intervals[i].samples);
      }
    }
  }
}

// --- Overload shedding --------------------------------------------------------

TEST(ServingCoreTest, ZeroCapacityQueueShedsEverythingWithRetryAfter) {
  ServeSetup s = BuildServeSetup(9019, 4);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  ServingOptions so;
  so.num_threads = 1;
  so.max_queue = 0;
  so.query = ServeQueryOptions();
  ServingCore core(&processor, so);

  QueryTicket t = core.Submit(s.db[0].certain());
  const ServeResult& r = t.Wait();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(r.retry_after_seconds, 0.0);
  core.Shutdown();
  EXPECT_EQ(core.stats().shed, 1u);
  EXPECT_EQ(core.stats().admitted, 0u);
}

TEST(ServingCoreTest, FullQueueShedsLowPriorityAndAdmitsHighPriority) {
  ServeSetup s = BuildServeSetup(9023, 4);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);

  // Block the dispatcher inside a mutation so the queue can only fill.
  std::promise<void> entered_promise;
  std::shared_future<void> entered = entered_promise.get_future().share();
  std::promise<void> release_promise;
  std::shared_future<void> release = release_promise.get_future().share();
  ServingOptions so;
  so.num_threads = 1;
  so.max_queue = 2;
  so.query = ServeQueryOptions();
  so.add = [&](const ProbabilisticGraph& g, uint64_t seed) {
    entered_promise.set_value();
    release.wait();
    return Result<uint32_t>(Status::Internal("gate: mutation dropped"));
  };
  ServingCore core(&processor, so);

  QueryTicket gate = core.SubmitAddGraph(ExtraGraph(9024), 1);
  entered.wait();  // dispatcher is now parked inside the mutation hook

  // Fill both slots at priority 0, then overflow.
  QueryTicket q0 = core.Submit(s.db[0].certain());
  QueryTicket q1 = core.Submit(s.db[1].certain());
  EXPECT_EQ(core.queue_depth(), 2u);

  // Same priority: the newcomer itself is rejected (equal rank does not
  // evict — queued tickets keep their sunk wait time).
  QueryTicket q2 = core.Submit(s.db[2].certain());
  EXPECT_EQ(q2.Wait().status.code(), StatusCode::kUnavailable);

  // Higher priority: admitted by evicting the youngest low-priority member.
  SubmitOptions hi;
  hi.priority = 5;
  QueryTicket q3 = core.Submit(s.db[3].certain(), hi);
  EXPECT_EQ(core.queue_depth(), 2u);

  release_promise.set_value();
  // Everything resolves: shed tickets with kUnavailable + retry hint, the
  // admitted ones with their real outcome once the dispatcher resumes.
  size_t shed = 0;
  for (QueryTicket* t : {&q0, &q1, &q2, &q3}) {
    const ServeResult& r = t->Wait();
    if (r.status.code() == StatusCode::kUnavailable) {
      ++shed;
      EXPECT_GT(r.retry_after_seconds, 0.0);
    }
  }
  EXPECT_EQ(shed, 2u);
  // The high-priority submit survived the overload.
  EXPECT_NE(q3.Wait().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(gate.Wait().status.code(), StatusCode::kInternal);

  core.Shutdown();
  const ServingStats st = core.stats();
  EXPECT_EQ(st.shed, 2u);
  EXPECT_EQ(st.double_resolves, 0u);
}

TEST(ServingCoreTest, ShutdownShedsLateSubmits) {
  ServeSetup s = BuildServeSetup(9029, 4);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  ServingOptions so;
  so.num_threads = 1;
  so.query = ServeQueryOptions();
  ServingCore core(&processor, so);
  core.Shutdown();
  QueryTicket t = core.Submit(s.db[0].certain());
  EXPECT_EQ(t.Wait().status.code(), StatusCode::kUnavailable);
}

// --- Mutation interleaving -----------------------------------------------------

TEST(ServingCoreTest, MutationsInterleaveAndStampEpochs) {
  ServeSetup s = BuildServeSetup(9031, 8);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  ServingOptions so;
  so.num_threads = 2;
  so.query = ServeQueryOptions();
  ServingCore core(&processor, so);

  const uint64_t epoch0 = processor.epoch();
  QueryTicket q1 = core.Submit(s.db[0].certain());
  const ServeResult& r1 = q1.Wait();
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.epoch, epoch0);

  QueryTicket add = core.SubmitAddGraph(ExtraGraph(9032), 77);
  const ServeResult& ra = add.Wait();
  ASSERT_TRUE(ra.status.ok()) << ra.status.message();
  EXPECT_GT(ra.epoch, epoch0);
  const uint32_t added_id = ra.graph_id;

  QueryTicket q2 = core.Submit(s.db[0].certain());
  const ServeResult& r2 = q2.Wait();
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.epoch, ra.epoch);
  // Same query, new index state: answers recomputed against the grown
  // database still contain everything the pre-mutation answer did.
  for (uint32_t id : r1.answers) {
    EXPECT_TRUE(std::find(r2.answers.begin(), r2.answers.end(), id) !=
                r2.answers.end());
  }

  QueryTicket rm = core.SubmitRemoveGraph(added_id);
  const ServeResult& rr = rm.Wait();
  ASSERT_TRUE(rr.status.ok()) << rr.status.message();
  EXPECT_GT(rr.epoch, ra.epoch);

  QueryTicket q3 = core.Submit(s.db[0].certain());
  const ServeResult& r3 = q3.Wait();
  ASSERT_TRUE(r3.status.ok());
  EXPECT_EQ(r3.answers, r1.answers);  // round trip is answer-preserving

  core.Shutdown();
  const ServingStats st = core.stats();
  EXPECT_EQ(st.mutations_applied, 2u);
  EXPECT_EQ(st.double_resolves, 0u);
}

// --- Answer cache on the admission path ----------------------------------------

TEST(ServingCoreTest, AdmissionPathServesAnswerCacheHitsInstantly) {
  ServeSetup s = BuildServeSetup(9037, 8);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  AnswerCache cache;
  ServingOptions so;
  so.num_threads = 1;
  so.query = ServeQueryOptions();
  so.answer_cache = &cache;
  ServingCore core(&processor, so);

  const Graph q = s.db[0].certain();
  QueryTicket t1 = core.Submit(q);
  const ServeResult& r1 = t1.Wait();
  ASSERT_TRUE(r1.status.ok());
  EXPECT_FALSE(r1.stats.answer_cache_hit);
  EXPECT_EQ(cache.size(), 1u);  // the pipeline stored the exact answer

  QueryTicket t2 = core.Submit(q);
  const ServeResult& r2 = t2.Wait();
  ASSERT_TRUE(r2.status.ok());
  EXPECT_TRUE(r2.stats.answer_cache_hit);
  EXPECT_EQ(r2.answers, r1.answers);
  EXPECT_EQ(r2.epoch, r1.epoch);

  core.Shutdown();
  const ServingStats st = core.stats();
  EXPECT_EQ(st.answer_cache_hits, 1u);
  EXPECT_EQ(st.admitted, 1u);  // the hit never queued
}

// Satellite: a degraded answer produced at a deadline must NEVER be stored,
// so the same query submitted later is recomputed exactly — an interval
// answer can never masquerade as an exact cache hit.
TEST(ServingCoreTest, DegradedResultsAreNeverCached) {
  ServeSetup s = BuildServeSetup(9041, 8);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  const QueryOptions options = ServeQueryOptions();

  AnswerCache cache;
  ServingOptions so;
  so.num_threads = 1;
  so.query = options;
  so.answer_cache = &cache;
  ServingCore core(&processor, so);

  // Find a query that genuinely degrades at the cancel point (one whose
  // candidates are not all decided by bounds before sampling). Queries that
  // complete exactly along the way store into the cache as usual.
  SubmitOptions degraded_opts;
  degraded_opts.allow_degraded = true;
  degraded_opts.cancel_after_draws = 1;
  Graph q;
  size_t exact_runs = 0;
  bool found = false;
  for (size_t i = 0; i < s.db.size() && !found; ++i) {
    const Graph cand = s.db[i].certain();
    QueryTicket t = core.Submit(cand, degraded_opts);
    const ServeResult& r = t.Wait();
    ASSERT_TRUE(r.status.ok());
    if (r.degraded) {
      q = cand;
      found = true;
    } else {
      ++exact_runs;
    }
  }
  ASSERT_TRUE(found) << "no query in the setup reaches the sampling loop";
  EXPECT_EQ(cache.size(), exact_runs) << "degraded result leaked into cache";

  // Golden exact answer, computed outside the serving/cache path.
  BatchOptions batch;
  batch.num_threads = 1;
  const auto golden = processor.QueryBatch({q}, options, batch);
  ASSERT_TRUE(golden[0].status.ok());

  // Resubmitted without a cancel point: must MISS (no stored entry), rerun
  // the full pipeline, and produce the exact golden answer.
  QueryTicket t2 = core.Submit(q);
  const ServeResult& r2 = t2.Wait();
  ASSERT_TRUE(r2.status.ok());
  EXPECT_FALSE(r2.degraded);
  EXPECT_FALSE(r2.stats.answer_cache_hit);
  EXPECT_EQ(r2.answers, golden[0].answers);
  EXPECT_EQ(core.stats().answer_cache_hits, 0u);

  // Only now does the cache hold the (exact) entry, and only now do hits
  // start.
  EXPECT_EQ(cache.size(), exact_runs + 1);
  QueryTicket t3 = core.Submit(q);
  const ServeResult& r3 = t3.Wait();
  ASSERT_TRUE(r3.status.ok());
  EXPECT_TRUE(r3.stats.answer_cache_hit);
  EXPECT_EQ(r3.answers, golden[0].answers);
  core.Shutdown();
}

// --- Callbacks & ticket plumbing -------------------------------------------------

TEST(ServingCoreTest, CallbackFiresExactlyOnceWithTheResolvedResult) {
  ServeSetup s = BuildServeSetup(9043, 4);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  ServingOptions so;
  so.num_threads = 1;
  so.query = ServeQueryOptions();
  ServingCore core(&processor, so);

  std::atomic<int> fired{0};
  std::promise<std::vector<uint32_t>> answers_promise;
  SubmitOptions opts;
  opts.callback = [&](const ServeResult& r) {
    if (fired.fetch_add(1) == 0) answers_promise.set_value(r.answers);
  };
  QueryTicket t = core.Submit(s.db[0].certain(), opts);
  const ServeResult& r = t.Wait();
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(answers_promise.get_future().get(), r.answers);
  core.Shutdown();
  EXPECT_EQ(fired.load(), 1);
}

}  // namespace
}  // namespace pgsim
