// Tests for the synthetic dataset generator (the Section 6 substitute):
// structural validity, probability statistics, JPT rules, families, and
// query extraction.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/prob/possible_world.h"

namespace pgsim {
namespace {

SyntheticOptions SmallOptions(uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = 12;
  options.avg_vertices = 10;
  options.edge_factor = 1.4;
  options.seed = seed;
  return options;
}

TEST(SyntheticTest, DatabaseShapeAndValidity) {
  auto db = GenerateDatabase(SmallOptions(1101));
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 12u);
  for (const ProbabilisticGraph& g : *db) {
    EXPECT_GE(g.certain().NumVertices(), 4u);
    EXPECT_TRUE(g.certain().IsConnected());
    EXPECT_EQ(g.kind(), JointModelKind::kPartition);
    // Every ne set's arity is capped and its table normalized.
    for (const NeighborEdgeSet& ne : g.ne_sets()) {
      EXPECT_LE(ne.edges.size(), 3u);
      EXPECT_NEAR(ne.table.TotalMass(), 1.0, 1e-9);
    }
  }
}

TEST(SyntheticTest, Deterministic) {
  auto a = GenerateDatabase(SmallOptions(7));
  auto b = GenerateDatabase(SmallOptions(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE(AreIsomorphic((*a)[i].certain(), (*b)[i].certain()));
    EXPECT_EQ((*a)[i].certain().NumEdges(), (*b)[i].certain().NumEdges());
    for (EdgeId e = 0; e < (*a)[i].NumEdges(); ++e) {
      EXPECT_NEAR((*a)[i].EdgeMarginal(e), (*b)[i].EdgeMarginal(e), 1e-12);
    }
  }
}

TEST(SyntheticTest, MeanEdgeProbabilityNearPaperValue) {
  SyntheticOptions options = SmallOptions(1103);
  options.num_graphs = 30;
  options.jpt_rule = JptRule::kIndependent;  // marginals == drawn p's
  auto db = GenerateDatabase(options);
  ASSERT_TRUE(db.ok());
  double sum = 0.0;
  size_t n = 0;
  for (const ProbabilisticGraph& g : *db) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      sum += g.EdgeMarginal(e);
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 0.383, 0.05);
}

TEST(SyntheticTest, PaperMaxRuleInducesCorrelation) {
  // Under the max rule the joint is NOT the product of its marginals for
  // multi-edge ne sets (that is the point of the correlated model).
  SyntheticOptions options = SmallOptions(1109);
  options.num_graphs = 5;
  auto db = GenerateDatabase(options);
  ASSERT_TRUE(db.ok());
  bool found_correlated_set = false;
  for (const ProbabilisticGraph& g : *db) {
    for (const NeighborEdgeSet& ne : g.ne_sets()) {
      if (ne.edges.size() < 2) continue;
      // Compare Pr(all present) with the product of single marginals.
      const uint32_t all = (1U << ne.edges.size()) - 1;
      double product = 1.0;
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        product *= ne.table.Marginal(1U << j, 1U << j);
      }
      if (std::abs(ne.table.MarginalAllPresent(all) - product) > 1e-3) {
        found_correlated_set = true;
      }
    }
  }
  EXPECT_TRUE(found_correlated_set);
}

TEST(SyntheticTest, ComonotoneRulePushesMassToExtremes) {
  SyntheticOptions options = SmallOptions(1117);
  options.jpt_rule = JptRule::kComonotone;
  options.comonotone_lambda = 0.9;
  options.num_graphs = 3;
  auto db = GenerateDatabase(options);
  ASSERT_TRUE(db.ok());
  for (const ProbabilisticGraph& g : *db) {
    for (const NeighborEdgeSet& ne : g.ne_sets()) {
      if (ne.edges.size() < 2) continue;
      const uint32_t all = (1U << ne.edges.size()) - 1;
      // All-present plus all-absent should dominate the mass.
      EXPECT_GT(ne.table.Prob(0) + ne.table.Prob(all), 0.5);
    }
  }
}

TEST(SyntheticTest, OverlapFractionProducesTreeModels) {
  SyntheticOptions options = SmallOptions(1123);
  options.overlap_fraction = 0.8;
  options.num_graphs = 10;
  auto db = GenerateDatabase(options);
  ASSERT_TRUE(db.ok());
  size_t tree_models = 0;
  for (const ProbabilisticGraph& g : *db) {
    if (g.kind() == JointModelKind::kTree) ++tree_models;
    // Worlds must still sum to 1 when small enough to enumerate.
    if (g.NumEdges() <= 18) {
      auto total = TotalWorldProbability(g);
      ASSERT_TRUE(total.ok());
      EXPECT_NEAR(*total, 1.0, 1e-9);
    }
  }
  EXPECT_GT(tree_models, 0u);
}

TEST(SyntheticTest, FamilyDatabaseGroundTruth) {
  FamilyOptions options;
  options.num_families = 3;
  options.graphs_per_family = 4;
  options.base = SmallOptions(1129);
  auto fdb = GenerateFamilyDatabase(options);
  ASSERT_TRUE(fdb.ok());
  EXPECT_EQ(fdb->graphs.size(), 12u);
  EXPECT_EQ(fdb->family_of.size(), 12u);
  EXPECT_EQ(fdb->seeds.size(), 3u);
  for (size_t i = 0; i < fdb->graphs.size(); ++i) {
    EXPECT_EQ(fdb->family_of[i], i / 4);
  }
  // Members resemble their seed: high vertex-count overlap.
  for (size_t i = 0; i < fdb->graphs.size(); ++i) {
    const Graph& seed = fdb->seeds[fdb->family_of[i]];
    const Graph& member = fdb->graphs[i].certain();
    EXPECT_EQ(member.NumVertices(), seed.NumVertices());
  }
}

TEST(SyntheticTest, ExtractQueryIsConnectedSubgraph) {
  auto db = GenerateDatabase(SmallOptions(1151));
  ASSERT_TRUE(db.ok());
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph& source = (*db)[trial % db->size()].certain();
    auto q = ExtractQuery(source, 4, &rng);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->NumEdges(), 4u);
    EXPECT_TRUE(q->IsConnected());
    EXPECT_TRUE(IsSubgraphIsomorphic(*q, source));
  }
}

TEST(SyntheticTest, ExtractQueryRejectsTooSmallSource) {
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(0);
  auto e = builder.AddEdge(0, 1, 0);
  ASSERT_TRUE(e.ok());
  const Graph tiny = builder.Build();
  Rng rng(6);
  EXPECT_FALSE(ExtractQuery(tiny, 5, &rng).ok());
}

TEST(SyntheticTest, GenerateQueriesProducesRequestedCount) {
  auto db = GenerateDatabase(SmallOptions(1153));
  ASSERT_TRUE(db.ok());
  auto queries = GenerateQueries(*db, 5, 7, 99);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 7u);
  for (const Graph& q : *queries) {
    EXPECT_EQ(q.NumEdges(), 5u);
  }
}

}  // namespace
}  // namespace pgsim
