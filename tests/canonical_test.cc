// Tests for canonical forms: codes must be equal exactly for isomorphic
// graphs (cross-checked against VF2), invariant under vertex permutation,
// and Canonicalize must produce identical layouts.

#include <gtest/gtest.h>

#include "pgsim/graph/canonical.h"
#include "pgsim/graph/vf2.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::MakeTriangle;
using ::pgsim::testing::RandomGraph;

Graph Permute(const Graph& g, Rng* rng) {
  std::vector<VertexId> perm(g.NumVertices());
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  std::vector<VertexId> inverse(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) inverse[perm[v]] = v;
  GraphBuilder builder;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    builder.AddVertex(g.VertexLabel(inverse[v]));
  }
  std::vector<Edge> edges = g.Edges();
  rng->Shuffle(&edges);
  for (const Edge& e : edges) {
    auto r = builder.AddEdge(perm[e.u], perm[e.v], e.label);
    (void)r;
  }
  return builder.Build();
}

TEST(CanonicalTest, EmptyAndSingleVertex) {
  const Graph empty;
  auto code = CanonicalCode(empty);
  ASSERT_TRUE(code.ok());
  EXPECT_TRUE(code->empty());
  const Graph single = MakeGraph({3}, {});
  auto code2 = CanonicalCode(single);
  ASSERT_TRUE(code2.ok());
  EXPECT_FALSE(code2->empty());
}

TEST(CanonicalTest, InvariantUnderPermutation) {
  Rng rng(2001);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = RandomGraph(&rng, 3 + rng.Uniform(6), rng.Uniform(5),
                                1 + rng.Uniform(3));
    const Graph h = Permute(g, &rng);
    auto cg = CanonicalCode(g);
    auto ch = CanonicalCode(h);
    ASSERT_TRUE(cg.ok());
    ASSERT_TRUE(ch.ok());
    EXPECT_EQ(*cg, *ch) << "trial " << trial;
  }
}

TEST(CanonicalTest, EqualCodesIffIsomorphic) {
  // Pairwise-compare a pool of random small graphs: code equality must
  // exactly match VF2-based isomorphism.
  Rng rng(2003);
  std::vector<Graph> pool;
  for (int i = 0; i < 16; ++i) {
    pool.push_back(RandomGraph(&rng, 4 + rng.Uniform(3), rng.Uniform(4), 2));
  }
  std::vector<std::string> codes;
  for (const Graph& g : pool) {
    auto code = CanonicalCode(g);
    ASSERT_TRUE(code.ok());
    codes.push_back(std::move(code).value());
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_EQ(codes[i] == codes[j], AreIsomorphic(pool[i], pool[j]))
          << "pair " << i << "," << j;
    }
  }
}

TEST(CanonicalTest, DistinguishesLabelPlacement) {
  // Same topology, different label positions relative to structure.
  const Graph a = MakeGraph({1, 2, 2}, {{0, 1, 0}, {1, 2, 0}});  // 1 at end
  const Graph b = MakeGraph({2, 1, 2}, {{0, 1, 0}, {1, 2, 0}});  // 1 in middle
  auto ca = CanonicalCode(a);
  auto cb = CanonicalCode(b);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_NE(*ca, *cb);
}

TEST(CanonicalTest, DistinguishesEdgeLabels) {
  const Graph a = MakeGraph({0, 0}, {{0, 1, 1}});
  const Graph b = MakeGraph({0, 0}, {{0, 1, 2}});
  EXPECT_NE(CanonicalCode(a).value(), CanonicalCode(b).value());
}

TEST(CanonicalTest, CanonicalizeGivesIdenticalLayout) {
  Rng rng(2007);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 2);
    const Graph h = Permute(g, &rng);
    auto canon_g = Canonicalize(g);
    auto canon_h = Canonicalize(h);
    ASSERT_TRUE(canon_g.ok());
    ASSERT_TRUE(canon_h.ok());
    ASSERT_EQ(canon_g->NumVertices(), canon_h->NumVertices());
    ASSERT_EQ(canon_g->NumEdges(), canon_h->NumEdges());
    for (VertexId v = 0; v < canon_g->NumVertices(); ++v) {
      EXPECT_EQ(canon_g->VertexLabel(v), canon_h->VertexLabel(v));
    }
    for (EdgeId e = 0; e < canon_g->NumEdges(); ++e) {
      EXPECT_EQ(canon_g->GetEdge(e).u, canon_h->GetEdge(e).u);
      EXPECT_EQ(canon_g->GetEdge(e).v, canon_h->GetEdge(e).v);
      EXPECT_EQ(canon_g->GetEdge(e).label, canon_h->GetEdge(e).label);
    }
    EXPECT_TRUE(AreIsomorphic(g, *canon_g));
  }
}

TEST(CanonicalTest, BudgetExhaustionSurfaces) {
  // A 9-vertex unlabeled clique-free regular-ish graph with a 1-node budget.
  Rng rng(2011);
  const Graph g = RandomGraph(&rng, 9, 6, 1);
  CanonicalOptions options;
  options.max_nodes = 1;
  auto code = CanonicalCode(g, options);
  ASSERT_FALSE(code.ok());
  EXPECT_EQ(code.status().code(), StatusCode::kResourceExhausted);
}

TEST(CanonicalTest, PathAndTriangleAreStable) {
  // Regression anchors: canonical codes must be deterministic run-to-run.
  EXPECT_EQ(CanonicalCode(MakePath(3)).value(),
            CanonicalCode(MakePath(3)).value());
  EXPECT_NE(CanonicalCode(MakePath(4)).value(),
            CanonicalCode(MakeTriangle(0, 0, 0)).value());
}

}  // namespace
}  // namespace pgsim
