// Correctness of the batch-scoped query cache: a batch with duplicated and
// isomorphic queries must answer bit-identically with the cache on or off
// (at any thread count), and BatchStats must expose the hit/miss counters.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/canonical.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/batch_cache.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

struct Pipeline {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> certain;
  ProbabilisticMatrixIndex pmi;
  StructuralFilter filter;
};

Pipeline MakePipeline(uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = 15;
  options.avg_vertices = 8;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 3;
  options.seed = seed;
  Pipeline p;
  p.db = GenerateDatabase(options).value();
  for (const auto& g : p.db) p.certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.alpha = 0.0;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 400;
  build.sip.mc.max_samples = 400;
  p.pmi = ProbabilisticMatrixIndex::Build(p.db, build).value();
  p.filter = StructuralFilter::Build(p.certain, p.pmi.features());
  return p;
}

QueryOptions FastOptions() {
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.4;
  options.verifier.mc.min_samples = 400;
  options.verifier.mc.max_samples = 400;
  return options;
}

// An isomorphic copy of `g` with vertex ids reversed: same class, different
// exact form (unless the graph is order-symmetric).
Graph ReverseVertexOrder(const Graph& g) {
  const uint32_t n = g.NumVertices();
  GraphBuilder builder;
  for (uint32_t pos = 0; pos < n; ++pos) {
    builder.AddVertex(g.VertexLabel(n - 1 - pos));
  }
  for (const Edge& e : g.Edges()) {
    auto r = builder.AddEdge(n - 1 - e.u, n - 1 - e.v, e.label);
    (void)r;
  }
  return builder.Build();
}

std::vector<Graph> MakeRepetitiveBatch(const Pipeline& p, uint64_t seed) {
  Rng rng(seed);
  std::vector<Graph> base;
  while (base.size() < 3) {
    auto q = ExtractQuery(p.certain[rng.Uniform(p.certain.size())], 4, &rng);
    if (q.ok()) base.push_back(std::move(q).value());
  }
  // Layout: [q0, q1, q2, q0(dup), q1(dup), q0(iso), q2(dup), q1(iso)].
  std::vector<Graph> queries = base;
  queries.push_back(base[0]);
  queries.push_back(base[1]);
  queries.push_back(ReverseVertexOrder(base[0]));
  queries.push_back(base[2]);
  queries.push_back(ReverseVertexOrder(base[1]));
  return queries;
}

TEST(BatchCacheTest, CachedBatchMatchesUncachedAtAnyThreadCount) {
  const Pipeline p = MakePipeline(3101);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeRepetitiveBatch(p, 3102);
  const QueryOptions options = FastOptions();

  BatchOptions uncached;
  uncached.num_threads = 1;
  uncached.enable_cache = false;
  BatchStats uncached_stats;
  const auto baseline =
      processor.QueryBatch(queries, options, uncached, &uncached_stats);
  EXPECT_EQ(uncached_stats.relax_cache_hits + uncached_stats.relax_cache_misses,
            0u);

  for (uint32_t threads : {1u, 2u, 4u}) {
    BatchOptions cached;
    cached.num_threads = threads;
    cached.chunk_size = 2;
    cached.enable_cache = true;
    BatchStats stats;
    const auto results = processor.QueryBatch(queries, options, cached, &stats);
    ASSERT_EQ(results.size(), baseline.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok()) << "threads=" << threads;
      EXPECT_EQ(results[i].answers, baseline[i].answers)
          << "query " << i << " threads=" << threads;
      // Deterministic pipeline counters are cache-invariant too.
      EXPECT_EQ(results[i].stats.structural_candidates,
                baseline[i].stats.structural_candidates);
      EXPECT_EQ(results[i].stats.verification_candidates,
                baseline[i].stats.verification_candidates);
      EXPECT_EQ(results[i].stats.answers, baseline[i].stats.answers);
    }
    // The probe count (hits + misses) is deterministic even in parallel —
    // every cacheable query probes each tier exactly once; the hit/miss
    // split can shift with thread scheduling, so it is pinned only in the
    // single-thread test below.
    EXPECT_EQ(stats.relax_cache_hits + stats.relax_cache_misses,
              queries.size());
    EXPECT_EQ(stats.counts_cache_hits + stats.counts_cache_misses,
              queries.size());
    EXPECT_EQ(stats.cache_uncacheable, 0u);
  }
}

TEST(BatchCacheTest, SingleThreadHitCountersAreExact) {
  const Pipeline p = MakePipeline(3201);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  const std::vector<Graph> queries = MakeRepetitiveBatch(p, 3202);
  // Sanity: the reversed copies must be genuine new exact forms.
  ASSERT_NE(GraphExactKey(queries[5]), GraphExactKey(queries[0]));
  ASSERT_EQ(CanonicalCode(queries[5]).value(),
            CanonicalCode(queries[0]).value());
  ASSERT_NE(GraphExactKey(queries[7]), GraphExactKey(queries[1]));
  ASSERT_EQ(CanonicalCode(queries[7]).value(),
            CanonicalCode(queries[1]).value());

  BatchOptions batch;
  batch.num_threads = 1;
  BatchStats stats;
  const auto results =
      processor.QueryBatch(queries, FastOptions(), batch, &stats);

  // [q0, q1, q2, q0(dup), q1(dup), q0(iso), q2(dup), q1(iso)] in order:
  // the relax and pruner-relation tiers hit on exact duplicates only
  // (3, 4, 6); the counts tier additionally hits the isomorphic
  // relabelings (5, 7).
  EXPECT_EQ(stats.relax_cache_hits, 3u);
  EXPECT_EQ(stats.relax_cache_misses, 5u);
  EXPECT_EQ(stats.counts_cache_hits, 5u);
  EXPECT_EQ(stats.counts_cache_misses, 3u);
  EXPECT_EQ(stats.prepared_cache_hits, 3u);
  EXPECT_EQ(stats.prepared_cache_misses, 5u);
  EXPECT_EQ(stats.cache_uncacheable, 0u);

  const std::vector<bool> expect_relax_hit{false, false, false, true,
                                           true,  false, true,  false};
  const std::vector<bool> expect_counts_hit{false, false, false, true,
                                            true,  true,  true,  true};
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    EXPECT_EQ(results[i].stats.relax_cache_hit, expect_relax_hit[i]) << i;
    EXPECT_EQ(results[i].stats.counts_cache_hit, expect_counts_hit[i]) << i;
    EXPECT_EQ(results[i].stats.prepared_cache_hit, expect_relax_hit[i]) << i;
  }
}

TEST(BatchCacheTest, CacheHitSkipsNoAnswersForIsomorphicQueries) {
  // The iso-class tier must hand back counts whose derived thresholds are
  // bit-identical: compare a relabeled query's full pipeline run cold vs
  // after the class is warm.
  const Pipeline p = MakePipeline(3301);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  Rng rng(3302);
  Graph q;
  for (;;) {
    auto extracted =
        ExtractQuery(p.certain[rng.Uniform(p.certain.size())], 4, &rng);
    if (extracted.ok()) {
      q = std::move(extracted).value();
      break;
    }
  }
  const Graph iso = ReverseVertexOrder(q);
  const QueryOptions options = FastOptions();

  QueryStats cold_stats;
  const auto cold = processor.Query(iso, options, &cold_stats);
  ASSERT_TRUE(cold.ok());

  BatchOptions batch;
  batch.num_threads = 1;
  const std::vector<Graph> queries{q, iso};
  const auto results = processor.QueryBatch(queries, options, batch);
  ASSERT_TRUE(results[1].status.ok());
  EXPECT_TRUE(results[1].stats.counts_cache_hit);
  EXPECT_EQ(results[1].answers, *cold);
  EXPECT_EQ(results[1].stats.structural_candidates,
            cold_stats.structural_candidates);
}

TEST(BatchCacheTest, DirectCacheApiStoresAndFinds) {
  BatchQueryCache cache;
  GraphBuilder builder;
  const VertexId a = builder.AddVertex(0);
  const VertexId b = builder.AddVertex(1);
  auto r = builder.AddEdge(a, b, 0);
  (void)r;
  const Graph g = builder.Build();

  auto first = cache.Find(g);
  ASSERT_TRUE(first.cacheable);
  EXPECT_EQ(first.relaxed, nullptr);
  EXPECT_EQ(first.counts, nullptr);

  auto relaxed = std::make_shared<std::vector<Graph>>();
  relaxed->push_back(g);
  cache.StoreRelaxed(first, relaxed);
  auto counts = std::make_shared<QueryFeatureCounts>();
  counts->entries.push_back({0, 2, 1});
  cache.StoreCounts(first, counts);

  auto second = cache.Find(g);
  ASSERT_NE(second.relaxed, nullptr);
  EXPECT_EQ(second.relaxed->size(), 1u);
  ASSERT_NE(second.counts, nullptr);
  EXPECT_EQ(second.counts->entries.size(), 1u);

  const BatchCacheStats stats = cache.stats();
  EXPECT_EQ(stats.relax_hits, 1u);
  EXPECT_EQ(stats.relax_misses, 1u);
  EXPECT_EQ(stats.counts_hits, 1u);
  EXPECT_EQ(stats.counts_misses, 1u);
}

}  // namespace
}  // namespace pgsim
