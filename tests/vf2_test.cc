// Tests for the VF2 engine: hand cases, label constraints, disconnected
// patterns, and a parameterized cross-check against an independent
// brute-force embedding enumerator.

#include <gtest/gtest.h>

#include "pgsim/graph/vf2.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::BruteForceEmbeddings;
using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::MakeTriangle;
using ::pgsim::testing::RandomGraph;

TEST(Vf2Test, PathInTriangle) {
  EXPECT_TRUE(IsSubgraphIsomorphic(MakePath(3), MakeTriangle(0, 0, 0)));
  EXPECT_FALSE(IsSubgraphIsomorphic(MakeTriangle(0, 0, 0), MakePath(3)));
}

TEST(Vf2Test, VertexLabelsMustMatch) {
  const Graph pattern = MakeGraph({1, 2}, {{0, 1, 0}});
  const Graph yes = MakeGraph({2, 1, 3}, {{0, 1, 0}, {1, 2, 0}});
  const Graph no = MakeGraph({3, 3}, {{0, 1, 0}});
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, yes));
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, no));
}

TEST(Vf2Test, EdgeLabelsMustMatch) {
  const Graph pattern = MakeGraph({0, 0}, {{0, 1, 5}});
  const Graph yes = MakeGraph({0, 0}, {{0, 1, 5}});
  const Graph no = MakeGraph({0, 0}, {{0, 1, 6}});
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, yes));
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, no));
}

TEST(Vf2Test, NonInducedSemantics) {
  // A path of 3 embeds in a triangle even though the triangle has the extra
  // closing edge (monomorphism, not induced).
  EXPECT_TRUE(IsSubgraphIsomorphic(MakePath(3), MakeTriangle(0, 0, 0)));
}

TEST(Vf2Test, DisconnectedPatternMatches) {
  // Two disjoint edges embed into a path of 5 (edges (0,1) and (2,3)).
  const Graph pattern =
      MakeGraph({0, 0, 0, 0}, {{0, 1, 0}, {2, 3, 0}});
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, MakePath(5)));
  // But not into a path of 3 (only 2 edges share the middle vertex).
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, MakePath(3)));
}

TEST(Vf2Test, SingleVertexPattern) {
  const Graph pattern = MakeGraph({7}, {});
  const Graph target = MakeGraph({5, 7}, {{0, 1, 0}});
  const Graph miss = MakeGraph({5, 6}, {{0, 1, 0}});
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, target));
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, miss));
}

TEST(Vf2Test, EmbeddingDedupByEdgeSet) {
  // A path of 3 in a triangle: 3 distinct edge pairs, though 6 vertex maps.
  const auto sets = EmbeddingEdgeSets(MakePath(3), MakeTriangle(0, 0, 0), 0);
  EXPECT_EQ(sets.size(), 3u);
}

TEST(Vf2Test, EmbeddingWithoutDedupCountsAutomorphisms) {
  Vf2Options options;
  options.dedup_by_edge_set = false;
  size_t count = 0;
  EnumerateEmbeddings(MakePath(3), MakeTriangle(0, 0, 0), options,
                      [&](const Embedding&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 6u);  // 3 middle choices x 2 orientations
}

TEST(Vf2Test, MaxEmbeddingsCapStopsEnumeration) {
  bool truncated = false;
  const auto sets =
      EmbeddingEdgeSets(MakePath(2), MakePath(10), 4, &truncated);
  EXPECT_EQ(sets.size(), 4u);
  EXPECT_TRUE(truncated);
}

TEST(Vf2Test, EmbeddingMapsAreConsistent) {
  const Graph pattern = MakeGraph({1, 2}, {{0, 1, 3}});
  const Graph target =
      MakeGraph({2, 1, 2}, {{0, 1, 3}, {1, 2, 3}});
  Vf2Options options;
  size_t checked = 0;
  EnumerateEmbeddings(pattern, target, options, [&](const Embedding& emb) {
    // Vertex labels preserved.
    for (VertexId pv = 0; pv < pattern.NumVertices(); ++pv) {
      EXPECT_EQ(pattern.VertexLabel(pv),
                target.VertexLabel(emb.vertex_map[pv]));
    }
    // Edge images connect the mapped endpoints with the right label.
    for (EdgeId pe = 0; pe < pattern.NumEdges(); ++pe) {
      const Edge& p = pattern.GetEdge(pe);
      const Edge& t = target.GetEdge(emb.edge_map[pe]);
      EXPECT_EQ(pattern.EdgeLabel(pe), target.EdgeLabel(emb.edge_map[pe]));
      const VertexId tu = emb.vertex_map[p.u], tv = emb.vertex_map[p.v];
      EXPECT_TRUE((t.u == std::min(tu, tv)) && (t.v == std::max(tu, tv)));
    }
    ++checked;
    return true;
  });
  EXPECT_EQ(checked, 2u);
}

TEST(AreIsomorphicTest, HandCases) {
  EXPECT_TRUE(AreIsomorphic(MakePath(3), MakePath(3)));
  EXPECT_FALSE(AreIsomorphic(MakePath(3), MakePath(4)));
  EXPECT_FALSE(AreIsomorphic(MakePath(4), MakeTriangle(0, 0, 0)));
  // Same sizes, different labels.
  EXPECT_FALSE(AreIsomorphic(MakeTriangle(0, 0, 0), MakeTriangle(0, 0, 1)));
  EXPECT_TRUE(AreIsomorphic(MakeTriangle(0, 1, 0), MakeTriangle(1, 0, 0)));
}

// Parameterized cross-check against the brute-force oracle over random
// (pattern, target) pairs of varying density and label-alphabet size.
struct RandomCaseParam {
  uint64_t seed;
  uint32_t pattern_n, pattern_extra;
  uint32_t target_n, target_extra;
  uint32_t labels;
};

class Vf2RandomTest : public ::testing::TestWithParam<RandomCaseParam> {};

TEST_P(Vf2RandomTest, MatchesBruteForceEmbeddingSets) {
  const RandomCaseParam p = GetParam();
  Rng rng(p.seed);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph pattern =
        RandomGraph(&rng, p.pattern_n, p.pattern_extra, p.labels);
    const Graph target = RandomGraph(&rng, p.target_n, p.target_extra,
                                     p.labels);
    const auto expected = BruteForceEmbeddings(pattern, target);
    const auto actual = EmbeddingEdgeSets(pattern, target, 0);
    EXPECT_EQ(actual.size(), expected.size());
    for (const EdgeBitset& e : expected) {
      EXPECT_NE(std::find(actual.begin(), actual.end(), e), actual.end());
    }
    EXPECT_EQ(IsSubgraphIsomorphic(pattern, target), !expected.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Vf2RandomTest,
    ::testing::Values(RandomCaseParam{101, 3, 1, 6, 4, 1},
                      RandomCaseParam{102, 3, 1, 6, 4, 2},
                      RandomCaseParam{103, 4, 2, 7, 5, 1},
                      RandomCaseParam{104, 4, 2, 7, 5, 3},
                      RandomCaseParam{105, 5, 3, 7, 6, 2},
                      RandomCaseParam{106, 2, 0, 8, 8, 1},
                      RandomCaseParam{107, 5, 5, 6, 6, 2}));

}  // namespace
}  // namespace pgsim
