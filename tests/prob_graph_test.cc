// Tests for the probabilistic graph model (Definitions 1-4, Equation 1,
// Figure 1 / Example 1) and possible-world enumeration.

#include <gtest/gtest.h>

#include "pgsim/prob/possible_world.h"
#include "pgsim/prob/probabilistic_graph.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

NeighborEdgeSet MakeNe(std::vector<EdgeId> edges, std::vector<double> weights) {
  NeighborEdgeSet ne;
  ne.edges = std::move(edges);
  ne.table = JointProbTable::FromWeights(std::move(weights)).value();
  return ne;
}

// Figure 1's probabilistic graph 002: 5 vertices a,a,b,b,c; edges
// e1..e5 arranged so {e1,e2,e3} share a vertex and {e3,e4,e5} share another.
//   v0(a) - v1(a): e1;  v0 - v2(b): e2;  v0 - v3(b): e3   (share v0)
//   v3 - v2: e4;  v3 - v4(c): e5                          (e3,e4,e5 share v3)
Graph MakeGraph002() {
  return MakeGraph({0, 0, 1, 1, 2}, {{0, 1, 0},
                                     {0, 2, 0},
                                     {0, 3, 0},
                                     {2, 3, 0},
                                     {3, 4, 0}});
}

TEST(ProbGraphTest, CreateValidatesCoverage) {
  const Graph g = MakePath(3);  // 2 edges
  // Only edge 0 covered.
  auto pg = ProbabilisticGraph::Create(g, {MakeNe({0}, {0.5, 0.5})});
  ASSERT_FALSE(pg.ok());
  EXPECT_EQ(pg.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProbGraphTest, CreateValidatesArity) {
  const Graph g = MakePath(3);
  NeighborEdgeSet ne;
  ne.edges = {0, 1};
  ne.table = JointProbTable::FromWeights({0.5, 0.5}).value();  // arity 1
  auto pg = ProbabilisticGraph::Create(g, {std::move(ne)});
  EXPECT_FALSE(pg.ok());
}

TEST(ProbGraphTest, CreateValidatesNeighborProperty) {
  // Edges (0,1) and (2,3) of a path of 4 share no vertex: not neighbor edges.
  const Graph g = MakePath(4);
  auto pg = ProbabilisticGraph::Create(
      g, {MakeNe({0, 2}, {0.25, 0.25, 0.25, 0.25}),
          MakeNe({1}, {0.5, 0.5})});
  ASSERT_FALSE(pg.ok());
  // With validation off the same structure is accepted.
  ProbGraphOptions options;
  options.validate_neighbor_property = false;
  auto pg2 = ProbabilisticGraph::Create(
      g, {MakeNe({0, 2}, {0.25, 0.25, 0.25, 0.25}), MakeNe({1}, {0.5, 0.5})},
      options);
  EXPECT_TRUE(pg2.ok());
}

TEST(ProbGraphTest, TriangleIsValidNeighborSet) {
  const Graph g = MakeGraph({0, 0, 0}, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  std::vector<double> w(8, 0.125);
  auto pg = ProbabilisticGraph::Create(g, {MakeNe({0, 1, 2}, w)});
  EXPECT_TRUE(pg.ok());
  EXPECT_EQ(pg->kind(), JointModelKind::kPartition);
}

TEST(ProbGraphTest, PartitionModelEquationOneLiterally) {
  // Star v0 with edges e0,e1 grouped; singleton e2 on v1.
  const Graph g = MakeGraph({0, 0, 0, 0},
                            {{0, 1, 0}, {0, 2, 0}, {1, 3, 0}});
  auto pg = ProbabilisticGraph::Create(
      g, {MakeNe({0, 1}, {0.1, 0.2, 0.3, 0.4}), MakeNe({2}, {0.25, 0.75})});
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(pg->kind(), JointModelKind::kPartition);
  // World {e0 present, e1 absent, e2 present}: Pr = 0.2 * 0.75.
  EdgeBitset world(3);
  world.Set(0);
  world.Set(2);
  EXPECT_NEAR(pg->WorldProbability(world), 0.2 * 0.75, 1e-12);
}

TEST(ProbGraphTest, WorldProbabilitiesSumToOnePartition) {
  Rng rng(83);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 2);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    auto total = TotalWorldProbability(pg);
    ASSERT_TRUE(total.ok());
    EXPECT_NEAR(*total, 1.0, 1e-9);
  }
}

TEST(ProbGraphTest, OverlappingSetsMakeTreeModel) {
  const Graph g002 = MakeGraph002();
  std::vector<double> w1(8), w2(8);
  // JPT1 rows from Figure 1 (e1 e2 e3 with "1 1 1 -> 0.3", "0 1 1 -> 0.3");
  // unspecified rows share the remaining 0.4 uniformly.
  for (auto& w : w1) w = 0.4 / 6;
  w1[0b111] = 0.3;
  w1[0b110] = 0.3;  // e1=0, e2=1, e3=1 with e1 as bit 0
  // JPT2 rows (e3 e4 e5): "1 1 0 -> 0.25", "1 1 1 -> 0.15".
  for (auto& w : w2) w = 0.6 / 6;
  w2[0b011] = 0.25;
  w2[0b111] = 0.15;
  auto pg = ProbabilisticGraph::Create(
      g002, {MakeNe({0, 1, 2}, w1), MakeNe({2, 3, 4}, w2)});
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(pg->kind(), JointModelKind::kTree);

  // Example 1's join: the (unnormalized) weight of PWG(1) = {e1..e4}, no e5,
  // is Pr(e1=1,e2=1,e3=1) * Pr(e3=1,e4=1,e5=0) = 0.3 * 0.25 = 0.075.
  EdgeBitset pwg1(5);
  pwg1.Set(0);
  pwg1.Set(1);
  pwg1.Set(2);
  pwg1.Set(3);
  EXPECT_NEAR(pg->inference().WorldWeight(pwg1), 0.075, 1e-12);
  // The normalized probability divides by the partition function.
  EXPECT_NEAR(pg->WorldProbability(pwg1), 0.075 / pg->inference().Z(), 1e-12);
  // And all world probabilities still sum to 1.
  auto total = TotalWorldProbability(*pg);
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(*total, 1.0, 1e-9);
}

TEST(ProbGraphTest, MarginalsAgreeWithEnumeration) {
  Rng rng(89);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = RandomGraph(&rng, 5, 3, 2);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    // Random event: a few edges present, a few absent.
    EdgeBitset care(pg.NumEdges()), value(pg.NumEdges());
    for (EdgeId e = 0; e < pg.NumEdges(); ++e) {
      if (rng.Bernoulli(0.5)) {
        care.Set(e);
        if (rng.Bernoulli(0.5)) value.Set(e);
      }
    }
    double expected = 0.0;
    ASSERT_TRUE(EnumerateWorlds(pg,
                                [&](const EdgeBitset& world, double p) {
                                  bool match = true;
                                  for (uint32_t e : care.ToVector()) {
                                    if (world.Test(e) != value.Test(e)) {
                                      match = false;
                                      break;
                                    }
                                  }
                                  if (match) expected += p;
                                  return true;
                                })
                    .ok());
    EXPECT_NEAR(pg.Probability(care, value), expected, 1e-9);
  }
}

TEST(ProbGraphTest, EdgeMarginalMatchesEnumeration) {
  Rng rng(97);
  const Graph g = RandomGraph(&rng, 5, 2, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  for (EdgeId e = 0; e < pg.NumEdges(); ++e) {
    double expected = 0.0;
    ASSERT_TRUE(EnumerateWorlds(pg,
                                [&](const EdgeBitset& world, double p) {
                                  if (world.Test(e)) expected += p;
                                  return true;
                                })
                    .ok());
    EXPECT_NEAR(pg.EdgeMarginal(e), expected, 1e-9);
  }
}

TEST(ProbGraphTest, SampleWorldMatchesDistribution) {
  Rng rng(101);
  const Graph g = MakePath(4);  // 3 edges
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  std::vector<double> expected(8, 0.0);
  ASSERT_TRUE(EnumerateWorlds(pg,
                              [&](const EdgeBitset& world, double p) {
                                uint32_t mask = 0;
                                for (uint32_t e : world.ToVector()) {
                                  mask |= 1U << e;
                                }
                                expected[mask] = p;
                                return true;
                              })
                  .ok());
  std::vector<int> counts(8, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const EdgeBitset world = pg.SampleWorld(&rng);
    uint32_t mask = 0;
    for (uint32_t e : world.ToVector()) mask |= 1U << e;
    ++counts[mask];
  }
  for (uint32_t mask = 0; mask < 8; ++mask) {
    EXPECT_NEAR(counts[mask] / static_cast<double>(n), expected[mask], 0.01);
  }
}

TEST(ProbGraphTest, ConditionedSamplingForcesEdges) {
  Rng rng(103);
  const Graph g = MakePath(5);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  EdgeBitset care(pg.NumEdges()), value(pg.NumEdges());
  care.Set(1);
  value.Set(1);
  care.Set(2);  // edge 2 forced absent
  for (int i = 0; i < 200; ++i) {
    auto world = pg.SampleWorldConditioned(&rng, care, value);
    ASSERT_TRUE(world.ok());
    EXPECT_TRUE(world->Test(1));
    EXPECT_FALSE(world->Test(2));
  }
}

TEST(ProbGraphTest, IndependentModelPreservesMarginals) {
  Rng rng(107);
  const Graph g = RandomGraph(&rng, 6, 3, 2);
  const ProbabilisticGraph cor = RandomProbGraph(g, &rng);
  auto ind = ToIndependentModel(cor);
  ASSERT_TRUE(ind.ok());
  EXPECT_EQ(ind->kind(), JointModelKind::kPartition);
  for (EdgeId e = 0; e < cor.NumEdges(); ++e) {
    EXPECT_NEAR(ind->EdgeMarginal(e), cor.EdgeMarginal(e), 1e-9);
  }
  // Singleton ne sets.
  for (const auto& ne : ind->ne_sets()) {
    EXPECT_EQ(ne.edges.size(), 1u);
  }
}

TEST(PossibleWorldTest, EnumerationGuardsLargeGraphs) {
  Rng rng(109);
  const Graph g = RandomGraph(&rng, 30, 20, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  WorldEnumOptions options;
  options.max_edges = 10;
  const Status s = EnumerateWorlds(
      pg, [](const EdgeBitset&, double) { return true; }, options);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(PossibleWorldTest, EarlyStopViaCallback) {
  Rng rng(113);
  const Graph g = MakePath(4);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  int seen = 0;
  ASSERT_TRUE(EnumerateWorlds(pg, [&](const EdgeBitset&, double) {
                return ++seen < 3;
              }).ok());
  EXPECT_EQ(seen, 3);
}

}  // namespace
}  // namespace pgsim
