// Tests for maximum common subgraph / subgraph distance (Definitions 7-8)
// and the relaxation machinery of Section 3.1, including the property that
// ties them together: dis(q, g) <= delta iff some delta-relaxed query embeds
// in g (the basis of Lemma 1).

#include <gtest/gtest.h>

#include "pgsim/graph/mcs.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/graph/vf2.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::MakeTriangle;
using ::pgsim::testing::RandomGraph;

TEST(McsTest, IdenticalGraphsHaveZeroDistance) {
  const Graph g = MakeTriangle(0, 1, 2);
  EXPECT_EQ(SubgraphDistance(g, g), 0u);
  EXPECT_TRUE(IsSubgraphSimilar(g, g, 0));
}

TEST(McsTest, SubgraphHasZeroDistance) {
  EXPECT_EQ(SubgraphDistance(MakePath(3), MakeTriangle(0, 0, 0)), 0u);
}

TEST(McsTest, TriangleVsPathNeedsOneDeletion) {
  // A triangle's best common subgraph with a path of 3 is the 2-edge path.
  EXPECT_EQ(SubgraphDistance(MakeTriangle(0, 0, 0), MakePath(3)), 1u);
  EXPECT_FALSE(IsSubgraphSimilar(MakeTriangle(0, 0, 0), MakePath(3), 0));
  EXPECT_TRUE(IsSubgraphSimilar(MakeTriangle(0, 0, 0), MakePath(3), 1));
}

TEST(McsTest, LabelMismatchForcesDeletions) {
  const Graph q = MakeGraph({1, 1}, {{0, 1, 0}});
  const Graph g = MakeGraph({2, 2}, {{0, 1, 0}});
  // No common edge at all: distance = |E(q)| = 1.
  EXPECT_EQ(SubgraphDistance(q, g), 1u);
}

TEST(McsTest, DistanceIsEdgeCountMinusMcs) {
  // q = square with diagonal (5 edges), g = square (4 edges): mcs = 4.
  const Graph q = MakeGraph(
      {0, 0, 0, 0},
      {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 3, 0}, {0, 2, 0}});
  const Graph g =
      MakeGraph({0, 0, 0, 0}, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 3, 0}});
  EXPECT_EQ(MaxCommonSubgraphEdges(q, g), 4u);
  EXPECT_EQ(SubgraphDistance(q, g), 1u);
}

TEST(McsTest, GiveUpAtShortCircuits) {
  const Graph q = MakePath(6);
  const Graph g = MakePath(10);
  EXPECT_EQ(MaxCommonSubgraphEdges(q, g, 3), 3u);
}

TEST(McsTest, DeltaAtLeastEdgesAlwaysSimilar) {
  const Graph q = MakeTriangle(1, 2, 3);
  const Graph g = MakeGraph({9}, {});
  EXPECT_TRUE(IsSubgraphSimilar(q, g, 3));
  EXPECT_TRUE(IsSubgraphSimilar(q, g, 5));
}

TEST(RelaxationTest, CountDeletionSets) {
  EXPECT_EQ(CountDeletionSets(5, 0), 1u);
  EXPECT_EQ(CountDeletionSets(5, 1), 5u);
  EXPECT_EQ(CountDeletionSets(5, 2), 10u);
  EXPECT_EQ(CountDeletionSets(6, 3), 20u);
  EXPECT_EQ(CountDeletionSets(3, 4), 0u);
  EXPECT_EQ(CountDeletionSets(60, 30), 118264581564861424ULL);
}

TEST(RelaxationTest, DeltaZeroYieldsQueryItself) {
  const Graph q = MakeTriangle(0, 1, 2);
  auto u = GenerateRelaxedQueries(q, 0);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->size(), 1u);
  EXPECT_TRUE(AreIsomorphic((*u)[0], q));
}

TEST(RelaxationTest, TriangleDeltaOneGivesOnePathUpToIso) {
  // Deleting any edge of an unlabeled triangle leaves a path of 3; all three
  // deletions are isomorphic, so |U| = 1.
  auto u = GenerateRelaxedQueries(MakeTriangle(0, 0, 0), 1);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 1u);
  EXPECT_TRUE(AreIsomorphic((*u)[0], MakePath(3)));
}

TEST(RelaxationTest, LabelsBreakSymmetry) {
  // Distinct vertex labels make the three triangle relaxations distinct.
  auto u = GenerateRelaxedQueries(MakeTriangle(0, 1, 2), 1);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);
}

TEST(RelaxationTest, RelaxedGraphsDropIsolatedVertices) {
  // A star with 2 edges relaxed by 1 leaves a single edge, 2 vertices.
  const Graph star = MakeGraph({0, 1, 2}, {{0, 1, 0}, {0, 2, 0}});
  auto u = GenerateRelaxedQueries(star, 1);
  ASSERT_TRUE(u.ok());
  for (const Graph& rq : *u) {
    EXPECT_EQ(rq.NumEdges(), 1u);
    EXPECT_EQ(rq.NumVertices(), 2u);
  }
}

TEST(RelaxationTest, DeltaEqualEdgesRejected) {
  EXPECT_FALSE(GenerateRelaxedQueries(MakePath(3), 2).ok());
}

TEST(RelaxationTest, CombinationCapRespected) {
  RelaxationOptions options;
  options.max_combinations = 5;
  const Graph q = MakePath(7);  // C(6, 2) = 15 > 5
  auto u = GenerateRelaxedQueries(q, 2, options);
  ASSERT_FALSE(u.ok());
  EXPECT_EQ(u.status().code(), StatusCode::kOutOfRange);
}

// Property: q ⊆sim g (distance <= delta) iff some rq in U embeds in g.
// This is the exact statement the pipeline's filtering relies on (Lemma 1's
// deterministic core), checked on random instances.
class RelaxSimilarityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(RelaxSimilarityTest, RelaxedEmbeddingIffDistanceAtMostDelta) {
  const auto [seed, delta] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph q = RandomGraph(&rng, 5, 2, 2);
    const Graph g = RandomGraph(&rng, 7, 4, 2);
    if (delta >= q.NumEdges()) continue;
    auto u = GenerateRelaxedQueries(q, delta);
    ASSERT_TRUE(u.ok());
    bool any_embeds = false;
    for (const Graph& rq : *u) {
      if (IsSubgraphIsomorphic(rq, g)) {
        any_embeds = true;
        break;
      }
    }
    EXPECT_EQ(any_embeds, IsSubgraphSimilar(q, g, delta))
        << "seed=" << seed << " delta=" << delta << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RelaxSimilarityTest,
    ::testing::Combine(::testing::Values(201, 202, 203),
                       ::testing::Values(0u, 1u, 2u, 3u)));

}  // namespace
}  // namespace pgsim
