// End-to-end tests of the T-PS pipeline: the full PMI pipeline (with exact
// verification) must return exactly the Exact-scan answers — the
// filter-and-verify framework is an optimization, never a semantics change.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

struct Pipeline {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> certain;
  ProbabilisticMatrixIndex pmi;
  StructuralFilter filter;
};

Pipeline MakePipeline(uint64_t seed, size_t num_graphs = 12) {
  SyntheticOptions options;
  options.num_graphs = num_graphs;
  options.avg_vertices = 8;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 3;
  options.seed = seed;
  Pipeline p;
  p.db = GenerateDatabase(options).value();
  for (const auto& g : p.db) p.certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.alpha = 0.0;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 6000;
  build.sip.mc.max_samples = 6000;
  p.pmi = ProbabilisticMatrixIndex::Build(p.db, build).value();
  p.filter = StructuralFilter::Build(p.certain, p.pmi.features());
  return p;
}

class PipelineAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(PipelineAgreementTest, PmiPipelineMatchesExactScan) {
  const auto [seed, epsilon] = GetParam();
  Pipeline p = MakePipeline(seed);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);

  Rng rng(seed + 5);
  QueryOptions options;
  options.delta = 1;
  options.epsilon = epsilon;
  options.verify_mode = QueryOptions::VerifyMode::kExact;
  for (int trial = 0; trial < 3; ++trial) {
    auto q = ExtractQuery(p.certain[rng.Uniform(p.certain.size())], 4, &rng);
    ASSERT_TRUE(q.ok());
    QueryStats pipeline_stats, exact_stats;
    auto pipeline = processor.Query(*q, options, &pipeline_stats);
    auto exact = processor.ExactScan(*q, options, &exact_stats);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE(exact.ok());
    // The probabilistic bounds carry Monte-Carlo noise; graphs whose exact
    // SSP is within the noise band of epsilon may legitimately differ.
    // Compare against the exact answer set with a tolerance band.
    std::vector<uint32_t> sym_diff;
    std::set_symmetric_difference(pipeline->begin(), pipeline->end(),
                                  exact->begin(), exact->end(),
                                  std::back_inserter(sym_diff));
    auto relaxed = GenerateRelaxedQueries(*q, options.delta);
    ASSERT_TRUE(relaxed.ok());
    for (uint32_t gi : sym_diff) {
      auto ssp = ExactSubgraphSimilarityProbability(p.db[gi], *relaxed);
      ASSERT_TRUE(ssp.ok());
      EXPECT_NEAR(*ssp, epsilon, 0.12)
          << "graph " << gi
          << " disagreed though far from the threshold; seed=" << seed;
    }
    EXPECT_EQ(pipeline_stats.database_size, p.db.size());
    EXPECT_LE(pipeline_stats.structural_candidates, p.db.size());
    EXPECT_LE(pipeline_stats.verification_candidates,
              pipeline_stats.structural_candidates);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineAgreementTest,
    ::testing::Combine(::testing::Values(1501ULL, 1507ULL),
                       ::testing::Values(0.3, 0.5, 0.7)));

TEST(ProcessorTest, DeltaBeyondQuerySizeReturnsEverything) {
  Pipeline p = MakePipeline(1511, 6);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  Rng rng(43);
  auto q = ExtractQuery(p.certain[0], 3, &rng);
  ASSERT_TRUE(q.ok());
  QueryOptions options;
  options.delta = 3;  // == |E(q)|
  options.epsilon = 0.9;
  auto answers = processor.Query(*q, options);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), p.db.size());
}

TEST(ProcessorTest, SampledVerificationCloseToExact) {
  Pipeline p = MakePipeline(1513);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  Rng rng(47);
  QueryOptions exact_options;
  exact_options.delta = 1;
  exact_options.epsilon = 0.5;
  exact_options.verify_mode = QueryOptions::VerifyMode::kExact;
  QueryOptions smp_options = exact_options;
  smp_options.verify_mode = QueryOptions::VerifyMode::kSample;
  smp_options.verifier.mc.min_samples = 20000;
  smp_options.verifier.mc.max_samples = 20000;

  auto q = ExtractQuery(p.certain[1], 4, &rng);
  ASSERT_TRUE(q.ok());
  auto exact = processor.Query(*q, exact_options);
  auto smp = processor.Query(*q, smp_options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(smp.ok());
  // Any disagreement must involve graphs whose SSP is near epsilon.
  std::vector<uint32_t> sym_diff;
  std::set_symmetric_difference(exact->begin(), exact->end(), smp->begin(),
                                smp->end(), std::back_inserter(sym_diff));
  auto relaxed = GenerateRelaxedQueries(*q, 1);
  ASSERT_TRUE(relaxed.ok());
  for (uint32_t gi : sym_diff) {
    auto ssp = ExactSubgraphSimilarityProbability(p.db[gi], *relaxed);
    ASSERT_TRUE(ssp.ok());
    EXPECT_NEAR(*ssp, 0.5, 0.1) << "graph " << gi;
  }
}

TEST(ProcessorTest, PipelineWithoutIndexStillCorrect) {
  Pipeline p = MakePipeline(1517, 8);
  // No PMI, no structural filter: everything goes to the verifier.
  const QueryProcessor bare(&p.db, nullptr, nullptr);
  const QueryProcessor full(&p.db, &p.pmi, &p.filter);
  Rng rng(53);
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.4;
  options.verify_mode = QueryOptions::VerifyMode::kExact;
  auto q = ExtractQuery(p.certain[2], 4, &rng);
  ASSERT_TRUE(q.ok());
  QueryStats bare_stats;
  auto bare_answers = bare.Query(*q, options, &bare_stats);
  auto full_answers = full.Query(*q, options);
  ASSERT_TRUE(bare_answers.ok());
  ASSERT_TRUE(full_answers.ok());
  EXPECT_EQ(bare_stats.verification_candidates, p.db.size());
  // Bare pipeline is exact; the full one may differ only near the threshold.
  auto relaxed = GenerateRelaxedQueries(*q, 1);
  ASSERT_TRUE(relaxed.ok());
  std::vector<uint32_t> sym_diff;
  std::set_symmetric_difference(bare_answers->begin(), bare_answers->end(),
                                full_answers->begin(), full_answers->end(),
                                std::back_inserter(sym_diff));
  for (uint32_t gi : sym_diff) {
    auto ssp = ExactSubgraphSimilarityProbability(p.db[gi], *relaxed);
    ASSERT_TRUE(ssp.ok());
    EXPECT_NEAR(*ssp, 0.4, 0.12) << "graph " << gi;
  }
}

TEST(ProcessorTest, StatsTimingsArePopulated) {
  Pipeline p = MakePipeline(1523, 8);
  const QueryProcessor processor(&p.db, &p.pmi, &p.filter);
  Rng rng(59);
  auto q = ExtractQuery(p.certain[0], 4, &rng);
  ASSERT_TRUE(q.ok());
  QueryOptions options;
  options.delta = 1;
  QueryStats stats;
  auto answers = processor.Query(*q, options, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_GT(stats.num_relaxed_queries, 0u);
  EXPECT_GE(stats.total_seconds,
            stats.structural_seconds + stats.prob_seconds - 1e-9);
  EXPECT_EQ(stats.answers, answers->size());
  EXPECT_EQ(stats.structural_candidates,
            stats.pruned_by_upper + stats.accepted_by_lower +
                stats.verification_candidates);
}

}  // namespace
}  // namespace pgsim
