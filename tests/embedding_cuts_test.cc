// Tests for embedding cuts: minimal hitting sets, the parallel graph cG of
// Theorem 6, and their equivalence (including the paper's Example 7).

#include <algorithm>

#include <gtest/gtest.h>

#include "pgsim/bounds/embedding_cuts.h"
#include "pgsim/graph/vf2.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;

bool IsCut(const EdgeBitset& cut, const std::vector<EdgeBitset>& embeddings) {
  for (const EdgeBitset& emb : embeddings) {
    if (!cut.Intersects(emb)) return false;
  }
  return true;
}

bool IsMinimalCut(const EdgeBitset& cut,
                  const std::vector<EdgeBitset>& embeddings) {
  if (!IsCut(cut, embeddings)) return false;
  for (uint32_t e : cut.ToVector()) {
    EdgeBitset smaller = cut;
    smaller.Reset(e);
    if (IsCut(smaller, embeddings)) return false;
  }
  return true;
}

// Brute-force minimal cuts by subset enumeration (small universes only).
std::vector<EdgeBitset> BruteForceMinimalCuts(
    const std::vector<EdgeBitset>& embeddings, uint32_t num_edges,
    size_t max_size) {
  std::vector<EdgeBitset> cuts;
  for (uint32_t mask = 1; mask < (1U << num_edges); ++mask) {
    EdgeBitset candidate(num_edges);
    for (uint32_t e = 0; e < num_edges; ++e) {
      if ((mask >> e) & 1U) candidate.Set(e);
    }
    if (candidate.Count() > max_size) continue;
    if (IsMinimalCut(candidate, embeddings)) cuts.push_back(candidate);
  }
  return cuts;
}

bool SameCutSets(std::vector<EdgeBitset> a, std::vector<EdgeBitset> b) {
  if (a.size() != b.size()) return false;
  for (const EdgeBitset& x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) return false;
  }
  return true;
}

TEST(EmbeddingCutsTest, SingleEmbeddingCutsAreItsSingletons) {
  const std::vector<EdgeBitset> embeddings{
      EdgeBitset::FromIndices(6, {1, 3, 4})};
  CutEnumOptions options;
  const auto cuts = EnumerateMinimalEmbeddingCuts(embeddings, 6, options);
  EXPECT_EQ(cuts.size(), 3u);
  for (const EdgeBitset& c : cuts) {
    EXPECT_EQ(c.Count(), 1u);
    EXPECT_TRUE(IsMinimalCut(c, embeddings));
  }
}

TEST(EmbeddingCutsTest, DisjointEmbeddingsNeedOneEdgeEach) {
  const std::vector<EdgeBitset> embeddings{
      EdgeBitset::FromIndices(6, {0, 1}), EdgeBitset::FromIndices(6, {2, 3})};
  CutEnumOptions options;
  const auto cuts = EnumerateMinimalEmbeddingCuts(embeddings, 6, options);
  EXPECT_EQ(cuts.size(), 4u);  // one edge from each embedding: 2 x 2
  for (const EdgeBitset& c : cuts) {
    EXPECT_EQ(c.Count(), 2u);
    EXPECT_TRUE(IsMinimalCut(c, embeddings));
  }
}

TEST(EmbeddingCutsTest, SharedEdgeGivesSingletonCut) {
  const std::vector<EdgeBitset> embeddings{
      EdgeBitset::FromIndices(5, {0, 1}), EdgeBitset::FromIndices(5, {1, 2})};
  CutEnumOptions options;
  const auto cuts = EnumerateMinimalEmbeddingCuts(embeddings, 5, options);
  // {1} kills both; {0,2} is the other minimal cut.
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_TRUE(SameCutSets(cuts, {EdgeBitset::FromIndices(5, {1}),
                                 EdgeBitset::FromIndices(5, {0, 2})}));
}

TEST(EmbeddingCutsTest, MatchesBruteForceOnRandomHypergraphs) {
  Rng rng(401);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t num_edges = 8;
    const size_t num_embeddings = 1 + rng.Uniform(4);
    std::vector<EdgeBitset> embeddings;
    for (size_t i = 0; i < num_embeddings; ++i) {
      EdgeBitset emb(num_edges);
      const uint32_t size = 1 + rng.Uniform(3);
      for (uint32_t j = 0; j < size; ++j) emb.Set(rng.Uniform(num_edges));
      embeddings.push_back(emb);
    }
    CutEnumOptions options;
    options.max_cuts = 1000;
    options.max_cut_size = 8;
    options.max_nodes = 1'000'000;
    const auto actual =
        EnumerateMinimalEmbeddingCuts(embeddings, num_edges, options);
    const auto expected = BruteForceMinimalCuts(embeddings, num_edges, 8);
    EXPECT_TRUE(SameCutSets(actual, expected)) << "trial=" << trial;
  }
}

TEST(EmbeddingCutsTest, CutSizeCapDropsLargeCuts) {
  // Three disjoint embeddings: every minimal cut has exactly 3 edges.
  const std::vector<EdgeBitset> embeddings{EdgeBitset::FromIndices(9, {0}),
                                           EdgeBitset::FromIndices(9, {1}),
                                           EdgeBitset::FromIndices(9, {2})};
  CutEnumOptions options;
  options.max_cut_size = 2;
  const auto cuts = EnumerateMinimalEmbeddingCuts(embeddings, 9, options);
  EXPECT_TRUE(cuts.empty());
}

TEST(EmbeddingCutsTest, MaxCutsTruncates) {
  std::vector<EdgeBitset> embeddings{EdgeBitset::FromIndices(8, {0, 1, 2, 3}),
                                     EdgeBitset::FromIndices(8, {4, 5, 6, 7})};
  CutEnumOptions options;
  options.max_cuts = 3;  // 16 exist
  bool truncated = false;
  const auto cuts =
      EnumerateMinimalEmbeddingCuts(embeddings, 8, options, &truncated);
  EXPECT_EQ(cuts.size(), 3u);
  EXPECT_TRUE(truncated);
  for (const auto& c : cuts) EXPECT_TRUE(IsMinimalCut(c, embeddings));
}

TEST(ParallelGraphTest, StructureOfTheorem6) {
  // Two embeddings of 2 edges each: each line contributes k+1 = 3 cG edges
  // (1 connector at s, 2 labeled, 1 connector at t) -> 4 edges per line.
  const std::vector<EdgeBitset> embeddings{
      EdgeBitset::FromIndices(4, {0, 1}), EdgeBitset::FromIndices(4, {2, 3})};
  const ParallelGraph cg = BuildParallelGraph(embeddings);
  EXPECT_EQ(cg.num_nodes, 2u + 3u + 3u);
  EXPECT_EQ(cg.edges.size(), 8u);
  size_t labeled = 0;
  for (const auto& e : cg.edges) {
    if (e.label != kInvalidEdge) ++labeled;
  }
  EXPECT_EQ(labeled, 4u);
}

TEST(ParallelGraphTest, CutsEqualHittingSets) {
  Rng rng(409);
  for (int trial = 0; trial < 15; ++trial) {
    const uint32_t num_edges = 7;
    std::vector<EdgeBitset> embeddings;
    const size_t k = 1 + rng.Uniform(3);
    for (size_t i = 0; i < k; ++i) {
      EdgeBitset emb(num_edges);
      const uint32_t size = 1 + rng.Uniform(3);
      for (uint32_t j = 0; j < size; ++j) emb.Set(rng.Uniform(num_edges));
      embeddings.push_back(emb);
    }
    const ParallelGraph cg = BuildParallelGraph(embeddings);
    const auto via_cg = EnumerateParallelGraphCuts(cg, num_edges, num_edges);
    CutEnumOptions options;
    options.max_cuts = 1000;
    options.max_cut_size = num_edges;
    options.max_nodes = 1'000'000;
    const auto via_hitting =
        EnumerateMinimalEmbeddingCuts(embeddings, num_edges, options);
    EXPECT_TRUE(SameCutSets(via_cg, via_hitting)) << "trial=" << trial;
  }
}

TEST(ParallelGraphTest, PaperExample7) {
  // Feature f2's embeddings in graph 002 (Figure 7): EM1={e1,e2},
  // EM2={e2,e3}, EM3={e3,e4} (0-indexed here as {0,1},{1,2},{2,3}).
  const std::vector<EdgeBitset> embeddings{EdgeBitset::FromIndices(5, {0, 1}),
                                           EdgeBitset::FromIndices(5, {1, 2}),
                                           EdgeBitset::FromIndices(5, {2, 3})};
  const ParallelGraph cg = BuildParallelGraph(embeddings);
  const auto cuts = EnumerateParallelGraphCuts(cg, 5, 5);
  CutEnumOptions options;
  options.max_cuts = 100;
  options.max_cut_size = 5;
  const auto expected = EnumerateMinimalEmbeddingCuts(embeddings, 5, options);
  EXPECT_TRUE(SameCutSets(cuts, expected));
  // Example 7 lists {e2,e4}, {e2,e3} (both minimal, found here) and
  // {e1,e3,e4} — but {e1,e3} already severs all three lines, so the paper's
  // third cut is not minimal; the true minimal cuts are {e2,e4}, {e2,e3},
  // {e1,e3} (0-indexed: {1,3}, {1,2}, {0,2}).
  EXPECT_TRUE(SameCutSets(cuts, {EdgeBitset::FromIndices(5, {1, 3}),
                                 EdgeBitset::FromIndices(5, {1, 2}),
                                 EdgeBitset::FromIndices(5, {0, 2})}));
}

}  // namespace
}  // namespace pgsim
