// Tests for the neighborhood signature index and the candidate-domain gate:
// cover-test soundness against the brute-force oracle on multi-label /
// degree-skew sweeps, domain-seeded enumeration equivalence (identical
// embedding sets AND order), live maintenance vs a fresh rebuild, the lazy
// rq-plan compile audit, steady-state no-scratch-growth, the PGSG snapshot
// round trip with truncation/bit-flip sweeps, the durable-database
// sig-snapshot paths, and the end-to-end pin that the fig09-style pipeline
// avoids VF2 calls with signatures on while answering bit-identically.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/signature.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/domain_index.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/query/verifier.h"
#include "pgsim/storage/durable_db.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::BruteForceEmbeddings;
using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A degree-skewed labeled graph: one hub of label `hub_label` plus a ring
/// of leaves with round-robin labels — stresses the degree and per-label
/// count components of the signature.
Graph StarGraph(uint32_t leaves, LabelId hub_label, uint32_t num_labels) {
  GraphBuilder b;
  b.AddVertex(hub_label);
  for (uint32_t i = 0; i < leaves; ++i) {
    b.AddVertex(static_cast<LabelId>(i % num_labels));
    auto r = b.AddEdge(0, i + 1, static_cast<LabelId>(i % 2));
    (void)r;
  }
  return b.Build();
}

// ---------------------------------------------------------------------------
// Cover-test soundness: a rejection must imply zero embeddings.
// ---------------------------------------------------------------------------

TEST(SignatureCoverTest, SoundAgainstBruteForceSweep) {
  size_t rejected = 0, pairs = 0;
  for (uint32_t num_labels : {1u, 2u, 4u}) {
    Rng rng(1000 + num_labels);
    for (int trial = 0; trial < 60; ++trial) {
      const Graph pattern = RandomGraph(&rng, 3 + rng.Uniform(3), 2, num_labels);
      const Graph target = RandomGraph(&rng, 6 + rng.Uniform(4), 4, num_labels);
      const QuerySignature psig = BuildQuerySignature(pattern);
      const QuerySignature tsig = BuildQuerySignature(target);
      ++pairs;
      if (!SignatureCoverTest(pattern, psig.view(), target, tsig.view())) {
        ++rejected;
        EXPECT_TRUE(BruteForceEmbeddings(pattern, target).empty())
            << "cover test rejected an embeddable pair (labels=" << num_labels
            << ", trial=" << trial << ")";
      }
    }
  }
  // The sweep must actually exercise the reject branch.
  EXPECT_GT(rejected, 0u);
  EXPECT_LT(rejected, pairs);
}

TEST(SignatureCoverTest, SoundOnDegreeSkew) {
  size_t rejected = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Rng rng(4200 + trial);
    const Graph pattern = StarGraph(2 + rng.Uniform(4), 0, 3);
    const Graph target =
        trial % 2 == 0 ? StarGraph(3 + rng.Uniform(6), 0, 3)
                       : RandomGraph(&rng, 8, 5, 3);
    const QuerySignature psig = BuildQuerySignature(pattern);
    const QuerySignature tsig = BuildQuerySignature(target);
    const bool covered =
        SignatureCoverTest(pattern, psig.view(), target, tsig.view());
    const bool embeds = !BruteForceEmbeddings(pattern, target).empty();
    if (!covered) {
      ++rejected;
      EXPECT_FALSE(embeds) << "trial " << trial;
    }
    if (embeds) EXPECT_TRUE(covered) << "trial " << trial;
  }
  EXPECT_GT(rejected, 0u);
}

// ---------------------------------------------------------------------------
// Candidate domains: sound, and enumeration-order preserving.
// ---------------------------------------------------------------------------

TEST(CandidateDomainsTest, RejectionImpliesNoEmbeddings) {
  Rng rng(77);
  Vf2Scratch scratch;
  size_t rejected = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const Graph pattern = RandomGraph(&rng, 3 + rng.Uniform(3), 2, 3);
    const Graph target = RandomGraph(&rng, 7 + rng.Uniform(4), 4, 3);
    const QuerySignature psig = BuildQuerySignature(pattern);
    const QuerySignature tsig = BuildQuerySignature(target);
    uint64_t pruned = 0;
    if (!BuildCandidateDomains(pattern, psig.view(), target, tsig.view(),
                               &scratch.domains, &pruned)) {
      ++rejected;
      EXPECT_TRUE(BruteForceEmbeddings(pattern, target).empty());
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST(CandidateDomainsTest, DomainSeededEnumerationIsIdenticalInSetAndOrder) {
  Rng rng(91);
  Vf2Scratch plain_scratch, dom_scratch;
  size_t surviving = 0, pruned_total = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const Graph pattern = RandomGraph(&rng, 3 + rng.Uniform(3), 2, 3);
    const Graph target = RandomGraph(&rng, 7 + rng.Uniform(5), 5, 3);
    const QuerySignature psig = BuildQuerySignature(pattern);
    const QuerySignature tsig = BuildQuerySignature(target);
    uint64_t pruned = 0;
    if (!BuildCandidateDomains(pattern, psig.view(), target, tsig.view(),
                               &dom_scratch.domains, &pruned)) {
      continue;
    }
    ++surviving;
    pruned_total += pruned;
    const MatchPlan plan = CompileMatchPlan(pattern);
    // The sequences — not just the sets — must match: downstream offline
    // consumers depend on enumeration order.
    std::vector<std::vector<VertexId>> plain_seq, dom_seq;
    Vf2Options options;
    EnumerateEmbeddings(plan, target, options, &plain_scratch,
                        [&](const Embedding& e) {
                          plain_seq.push_back(e.vertex_map);
                          return true;
                        });
    Vf2Options dom_options;
    dom_options.domains = &dom_scratch.domains;
    EnumerateEmbeddings(plan, target, dom_options, &dom_scratch,
                        [&](const Embedding& e) {
                          dom_seq.push_back(e.vertex_map);
                          return true;
                        });
    ASSERT_EQ(plain_seq, dom_seq) << "trial " << trial;
    // Existence check agrees too (separate code path).
    EXPECT_EQ(IsSubgraphIsomorphic(plan, target, &dom_scratch,
                                   &dom_scratch.domains),
              !plain_seq.empty());
  }
  EXPECT_GT(surviving, 0u);
  EXPECT_GT(pruned_total, 0u);  // the sweep must actually narrow domains
}

// ---------------------------------------------------------------------------
// SignatureIndex: maintenance equals a fresh rebuild.
// ---------------------------------------------------------------------------

std::vector<ProbabilisticGraph> SmallDatabase(uint64_t seed, size_t n) {
  SyntheticOptions options;
  options.num_graphs = n;
  options.avg_vertices = 8;
  options.num_vertex_labels = 4;
  options.seed = seed;
  return GenerateDatabase(options).value();
}

void ExpectSameSignatures(const SignatureIndex& a, const SignatureIndex& b) {
  ASSERT_EQ(a.num_graphs(), b.num_graphs());
  ASSERT_EQ(a.num_alive(), b.num_alive());
  for (uint32_t gi = 0; gi < a.num_graphs(); ++gi) {
    ASSERT_EQ(a.IsAlive(gi), b.IsAlive(gi)) << "graph " << gi;
    const SignatureView va = a.ForGraph(gi);
    const SignatureView vb = b.ForGraph(gi);
    ASSERT_EQ(va.num_vertices, vb.num_vertices) << "graph " << gi;
    for (uint32_t v = 0; v < va.num_vertices; ++v) {
      ASSERT_EQ(va.nbr_bits[v], vb.nbr_bits[v]) << gi << ":" << v;
      ASSERT_EQ(va.hop2_bits[v], vb.hop2_bits[v]) << gi << ":" << v;
      ASSERT_EQ(va.degree[v], vb.degree[v]) << gi << ":" << v;
      for (uint32_t s = 0; s < kSignatureLabelSlots; ++s) {
        ASSERT_EQ(va.label_counts[v * kSignatureLabelSlots + s],
                  vb.label_counts[v * kSignatureLabelSlots + s])
            << gi << ":" << v << ":" << s;
      }
    }
  }
}

TEST(SignatureIndexTest, ParallelBuildIsByteIdentical) {
  const auto db = SmallDatabase(31, 9);
  SignatureIndex::BuildOptions seq;
  seq.num_threads = 1;
  SignatureIndex::BuildOptions par;
  par.num_threads = 4;
  ExpectSameSignatures(SignatureIndex::Build(db, seq),
                       SignatureIndex::Build(db, par));
}

TEST(SignatureIndexTest, MaintenanceMatchesFreshRebuild) {
  auto db = SmallDatabase(47, 6);
  const auto extra = SmallDatabase(48, 3);
  SignatureIndex idx = SignatureIndex::Build(db);

  // Grow, then tombstone two graphs.
  for (const auto& g : extra) {
    const uint32_t id = idx.AddGraph(g.certain());
    EXPECT_EQ(id, static_cast<uint32_t>(db.size()));
    db.push_back(g);
  }
  ASSERT_TRUE(idx.RemoveGraph(1).ok());
  ASSERT_TRUE(idx.RemoveGraph(7).ok());
  EXPECT_FALSE(idx.RemoveGraph(7).ok());  // double remove
  EXPECT_FALSE(idx.RemoveGraph(999).ok());

  // Tombstoned state: fresh build over the same graphs + same removals.
  {
    SignatureIndex fresh = SignatureIndex::Build(db);
    ASSERT_TRUE(fresh.RemoveGraph(1).ok());
    ASSERT_TRUE(fresh.RemoveGraph(7).ok());
    ExpectSameSignatures(idx, fresh);
  }

  // Compacted state: fresh build over the packed survivor list.
  idx.Compact();
  std::vector<ProbabilisticGraph> packed;
  for (size_t gi = 0; gi < db.size(); ++gi) {
    if (gi != 1 && gi != 7) packed.push_back(db[gi]);
  }
  ExpectSameSignatures(idx, SignatureIndex::Build(packed));
}

// ---------------------------------------------------------------------------
// PGSG snapshot: round trip + corruption sweeps.
// ---------------------------------------------------------------------------

TEST(SignatureSnapshotTest, RoundTripsWithTombstones) {
  const auto db = SmallDatabase(61, 5);
  SignatureIndex idx = SignatureIndex::Build(db);
  ASSERT_TRUE(idx.RemoveGraph(2).ok());
  const std::string path = ::testing::TempDir() + "/pgsim_sig_roundtrip.bin";
  ASSERT_TRUE(idx.Save(path, /*epoch=*/17).ok());
  auto loaded = SignatureIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->saved_epoch(), 17u);
  ExpectSameSignatures(idx, *loaded);
  std::remove(path.c_str());
}

TEST(SignatureSnapshotTest, TruncationSweepNeverLoads) {
  const auto db = SmallDatabase(62, 4);
  const SignatureIndex idx = SignatureIndex::Build(db);
  const std::string path = ::testing::TempDir() + "/pgsim_sig_trunc.bin";
  ASSERT_TRUE(idx.Save(path, 3).ok());
  const std::string full = Slurp(path);
  ASSERT_TRUE(SignatureIndex::Load(path).ok());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Spit(path, full.substr(0, cut));
    auto loaded = SignatureIndex::Load(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path.c_str());
}

TEST(SignatureSnapshotTest, BitFlipSweepIsAlwaysAnError) {
  const auto db = SmallDatabase(63, 3);
  const SignatureIndex idx = SignatureIndex::Build(db);
  const std::string path = ::testing::TempDir() + "/pgsim_sig_flip.bin";
  ASSERT_TRUE(idx.Save(path, 3).ok());
  const std::string full = Slurp(path);
  for (size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    Spit(path, bad);
    auto loaded = SignatureIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i << " loaded";
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Verifier gate: bit-identical probabilities, lazy plan audit, no growth.
// ---------------------------------------------------------------------------

struct GateFixture {
  std::vector<ProbabilisticGraph> db;
  SignatureIndex sigs;
  std::vector<Graph> relaxed;
  std::vector<QuerySignature> rq_sigs;

  explicit GateFixture(uint64_t seed, size_t n = 8) {
    db = SmallDatabase(seed, n);
    sigs = SignatureIndex::Build(db);
    Rng rng(seed + 1);
    auto q = ExtractQuery(db[0].certain(), 4, &rng);
    auto u = GenerateRelaxedQueries(q.value(), /*delta=*/1);
    relaxed = u.value();
    for (const Graph& rq : relaxed) {
      rq_sigs.push_back(BuildQuerySignature(rq));
    }
  }

  SignatureGate GateFor(uint32_t gi) const {
    SignatureGate gate;
    gate.target = sigs.ForGraph(gi);
    gate.rq = &rq_sigs;
    return gate;
  }
};

TEST(VerifierGateTest, ExactAndSampledProbabilitiesBitIdentical) {
  const GateFixture fx(301);
  VerifierOptions options;
  VerifierScratch gated, plain;
  uint64_t avoided = 0;
  for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
    const SignatureGate gate = fx.GateFor(gi);
    const auto with_gate = ExactSubgraphSimilarityProbability(
        fx.db[gi], fx.relaxed, options, &gated, nullptr, &gate);
    const auto without = ExactSubgraphSimilarityProbability(
        fx.db[gi], fx.relaxed, options, &plain, nullptr, nullptr);
    ASSERT_EQ(with_gate.ok(), without.ok()) << "graph " << gi;
    if (with_gate.ok()) {
      EXPECT_EQ(with_gate.value(), without.value()) << "graph " << gi;
    }
    avoided += gated.vf2_calls_avoided;

    Rng rng_a(900 + gi), rng_b(900 + gi);
    const auto sample_gate = SampleSubgraphSimilarityProbability(
        fx.db[gi], fx.relaxed, options, &rng_a, &gated, nullptr, &gate);
    const auto sample_plain = SampleSubgraphSimilarityProbability(
        fx.db[gi], fx.relaxed, options, &rng_b, &plain, nullptr, nullptr);
    ASSERT_EQ(sample_gate.ok(), sample_plain.ok()) << "graph " << gi;
    if (sample_gate.ok()) {
      EXPECT_EQ(sample_gate.value(), sample_plain.value()) << "graph " << gi;
    }
  }
  EXPECT_GT(avoided, 0u);  // the fixture must exercise the reject branch
}

TEST(VerifierGateTest, LazyPlanCompileAudit) {
  const GateFixture fx(311);
  VerifierOptions options;
  VerifierScratch scratch;
  for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
    const SignatureGate gate = fx.GateFor(gi);
    ASSERT_TRUE(CollectSimilarityEvents(fx.db[gi], fx.relaxed, options,
                                        &scratch, nullptr, &gate)
                    .ok());
    // Exactly the surviving pairs compile a plan; rejected ones never do.
    EXPECT_EQ(scratch.rq_plans_compiled + scratch.sig_pairs_rejected,
              fx.relaxed.size())
        << "graph " << gi;
    EXPECT_EQ(scratch.vf2_calls_avoided, scratch.sig_pairs_rejected);
  }
}

TEST(VerifierGateTest, SecondPassPerformsNoScratchGrowth) {
  const GateFixture fx(321);
  VerifierOptions options;
  VerifierScratch scratch;
  auto run_all = [&] {
    for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
      const SignatureGate gate = fx.GateFor(gi);
      ASSERT_TRUE(CollectSimilarityEvents(fx.db[gi], fx.relaxed, options,
                                          &scratch, nullptr, &gate)
                      .ok());
    }
  };
  run_all();
  const size_t pool_words = scratch.PoolCapacityWords();
  const size_t vf2_bytes = scratch.vf2.CapacityBytes();
  run_all();
  EXPECT_EQ(scratch.PoolCapacityWords(), pool_words);
  EXPECT_EQ(scratch.vf2.CapacityBytes(), vf2_bytes);
}

// ---------------------------------------------------------------------------
// Structural filter gate: identical survivors, fewer VF2 calls.
// ---------------------------------------------------------------------------

TEST(FilterGateTest, SurvivorsIdenticalAndVf2CallsDrop) {
  const auto db = SmallDatabase(401, 14);
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 500;
  build.sip.mc.max_samples = 500;
  const auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  const StructuralFilter filter =
      StructuralFilter::Build(certain, pmi.features());
  const SignatureIndex sigs = SignatureIndex::Build(db);

  Rng rng(402);
  size_t rejected_total = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto q = ExtractQuery(certain[rng.Uniform(certain.size())], 5, &rng);
    ASSERT_TRUE(q.ok());
    const auto relaxed = GenerateRelaxedQueries(*q, 1).value();
    std::vector<QuerySignature> rq_sigs;
    for (const Graph& rq : relaxed) rq_sigs.push_back(BuildQuerySignature(rq));

    StructuralFilterScratch scratch;
    std::vector<uint32_t> plain, gated;
    StructuralFilterStats plain_stats, gated_stats;
    filter.Filter(*q, relaxed, 1, &plain, &scratch, &plain_stats);
    filter.Filter(*q, relaxed, 1, &gated, &scratch, &gated_stats, nullptr,
                  nullptr, nullptr, &sigs, &rq_sigs);
    EXPECT_EQ(plain, gated) << "trial " << trial;
    EXPECT_EQ(gated_stats.isomorphism_tests + gated_stats.sig_pairs_rejected,
              plain_stats.isomorphism_tests)
        << "trial " << trial;
    rejected_total += gated_stats.sig_pairs_rejected;
  }
  EXPECT_GT(rejected_total, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end pipeline: answers bit-identical on/off, VF2 calls avoided
// (the fig09-workload counter pin), counters surfaced through QueryStats.
// ---------------------------------------------------------------------------

TEST(ProcessorSignatureTest, AnswersBitIdenticalAndVf2CallsAvoided) {
  const auto db = SmallDatabase(501, 16);
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 500;
  build.sip.mc.max_samples = 500;
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  auto filter = StructuralFilter::Build(certain, pmi.features());
  const QueryProcessor processor(&db, &pmi, &filter);

  Rng rng(502);
  QueryOptions on, off;
  on.delta = off.delta = 1;
  on.epsilon = off.epsilon = 0.2;
  on.use_signatures = true;
  off.use_signatures = false;
  // Execution-only knob: must not fragment the answer-cache key space.
  EXPECT_EQ(QueryOptionsFingerprint(on), QueryOptionsFingerprint(off));

  uint64_t avoided_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const auto q = ExtractQuery(certain[rng.Uniform(certain.size())], 4, &rng);
    ASSERT_TRUE(q.ok());
    QueryStats stats_on, stats_off;
    const auto ans_on = processor.Query(*q, on, &stats_on);
    const auto ans_off = processor.Query(*q, off, &stats_off);
    ASSERT_TRUE(ans_on.ok());
    ASSERT_TRUE(ans_off.ok());
    EXPECT_EQ(*ans_on, *ans_off) << "trial " << trial;
    EXPECT_EQ(stats_on.structural_candidates, stats_off.structural_candidates);
    EXPECT_EQ(stats_on.verification_candidates,
              stats_off.verification_candidates);
    EXPECT_EQ(stats_off.vf2_calls_avoided, 0u);
    EXPECT_EQ(stats_off.sig_pairs_rejected, 0u);
    avoided_total += stats_on.vf2_calls_avoided;
  }
  // The counter pin: the workload must demonstrably skip matcher calls.
  EXPECT_GT(avoided_total, 0u);
}

TEST(ProcessorSignatureTest, BatchAnswersIdenticalAcrossWidthsAndSettings) {
  const auto db = SmallDatabase(511, 12);
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 500;
  build.sip.mc.max_samples = 500;
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  auto filter = StructuralFilter::Build(certain, pmi.features());
  const QueryProcessor processor(&db, &pmi, &filter);

  Rng rng(512);
  std::vector<Graph> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(
        ExtractQuery(certain[rng.Uniform(certain.size())], 4, &rng).value());
  }

  std::vector<std::vector<std::vector<uint32_t>>> all;
  uint64_t avoided_on = 0;
  for (const bool use_sigs : {true, false}) {
    for (const uint32_t width : {1u, 4u}) {
      QueryOptions options;
      options.delta = 1;
      options.epsilon = 0.2;
      options.use_signatures = use_sigs;
      BatchOptions batch;
      batch.num_threads = width;
      BatchStats stats;
      const auto results =
          processor.QueryBatch(queries, options, batch, &stats);
      std::vector<std::vector<uint32_t>> answers;
      for (const auto& r : results) {
        ASSERT_TRUE(r.status.ok());
        answers.push_back(r.answers);
      }
      all.push_back(std::move(answers));
      if (use_sigs) {
        avoided_on += stats.vf2_calls_avoided;
      } else {
        EXPECT_EQ(stats.vf2_calls_avoided, 0u);
        EXPECT_EQ(stats.sig_pairs_rejected, 0u);
      }
    }
  }
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[0], all[i]) << "variant " << i;
  }
  EXPECT_GT(avoided_on, 0u);
}

// ---------------------------------------------------------------------------
// Durable database: sig snapshot loads, rebuilds when missing, and refuses
// corruption.
// ---------------------------------------------------------------------------

TEST(DurableSignatureTest, MissingSigSnapshotRebuildsCorruptOneRefuses) {
  const std::string dir = ::testing::TempDir() + "/pgsim_sig_durable";
  std::filesystem::remove_all(dir);

  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 500;
  build.sip.mc.max_samples = 500;
  {
    auto created =
        DurableDatabase::Create(dir, SmallDatabase(601, 5), build);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }
  const std::string sig_path = dir + "/snap-0.sig";
  const std::string sig_bytes = Slurp(sig_path);
  ASSERT_FALSE(sig_bytes.empty());

  // Clean reopen loads the sig snapshot.
  { ASSERT_TRUE(DurableDatabase::Open(dir).ok()); }

  // A pre-signature directory (no .sig file) rebuilds and still opens.
  std::remove(sig_path.c_str());
  {
    auto opened = DurableDatabase::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    // A checkpoint from the rebuilt state writes the file back.
    ASSERT_TRUE((*opened)->Checkpoint().ok());
    EXPECT_FALSE(Slurp(dir + "/snap-1.sig").empty());
  }

  // A corrupt sig snapshot must refuse the open, not silently rebuild.
  const std::string sig1 = dir + "/snap-1.sig";
  std::string bad = Slurp(sig1);
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x01);
  Spit(sig1, bad);
  {
    auto opened = DurableDatabase::Open(dir);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  }
}

}  // namespace
}  // namespace pgsim
