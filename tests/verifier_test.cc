// Tests for verification (Section 5): exact SSP (two independent engines
// must agree with the Definition 9 world-enumeration ground truth) and the
// SMP Karp-Luby sampler (Algorithm 5) concentration around the exact value.

#include <gtest/gtest.h>

#include "pgsim/graph/relaxation.h"
#include "pgsim/query/verifier.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

TEST(VerifierTest, HandCaseSingleEdgeQuery) {
  // g: one uncertain edge with p = 0.4; q: the same edge; delta = 0.
  const Graph certain = MakeGraph({1, 2}, {{0, 1, 0}});
  NeighborEdgeSet ne;
  ne.edges = {0};
  ne.table = JointProbTable::Independent({0.4}).value();
  auto pg = ProbabilisticGraph::Create(certain, {ne});
  ASSERT_TRUE(pg.ok());
  const Graph q = MakeGraph({1, 2}, {{0, 1, 0}});
  auto relaxed = GenerateRelaxedQueries(q, 0);
  ASSERT_TRUE(relaxed.ok());
  auto exact = ExactSubgraphSimilarityProbability(*pg, *relaxed);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(*exact, 0.4, 1e-12);
}

class SspAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(SspAgreementTest, DnfEngineMatchesWorldEnumeration) {
  const auto [seed, delta] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 2);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    const Graph q = RandomGraph(&rng, 4, 1, 2);
    if (delta >= q.NumEdges()) continue;
    auto relaxed = GenerateRelaxedQueries(q, delta);
    ASSERT_TRUE(relaxed.ok());
    auto exact_dnf = ExactSubgraphSimilarityProbability(pg, *relaxed);
    ASSERT_TRUE(exact_dnf.ok());
    auto exact_world = ExactSspByWorldEnumeration(pg, q, delta);
    ASSERT_TRUE(exact_world.ok());
    EXPECT_NEAR(*exact_dnf, *exact_world, 1e-9)
        << "seed=" << seed << " delta=" << delta << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SspAgreementTest,
    ::testing::Combine(::testing::Values(1001ULL, 1003ULL, 1007ULL),
                       ::testing::Values(0u, 1u, 2u)));

class SmpConcentrationTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(SmpConcentrationTest, SmpEstimateNearExact) {
  const auto [seed, delta] = GetParam();
  Rng rng(seed);
  VerifierOptions options;
  options.mc.xi = 0.05;
  options.mc.tau = 0.03;
  options.mc.max_samples = 50'000;
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 1);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    const Graph q = RandomGraph(&rng, 4, 1, 1);
    if (delta >= q.NumEdges()) continue;
    auto relaxed = GenerateRelaxedQueries(q, delta);
    ASSERT_TRUE(relaxed.ok());
    auto exact = ExactSubgraphSimilarityProbability(pg, *relaxed);
    ASSERT_TRUE(exact.ok());
    auto smp =
        SampleSubgraphSimilarityProbability(pg, *relaxed, options, &rng);
    ASSERT_TRUE(smp.ok());
    EXPECT_NEAR(*smp, *exact, 0.05)
        << "seed=" << seed << " delta=" << delta << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmpConcentrationTest,
    ::testing::Combine(::testing::Values(1011ULL, 1013ULL),
                       ::testing::Values(0u, 1u)));

TEST(VerifierTest, NoEmbeddingsMeansZero) {
  Rng rng(1021);
  const Graph g = MakePath(4, /*label=*/0);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  // Query whose labels never occur in g.
  const Graph q = MakeGraph({7, 7, 7}, {{0, 1, 0}, {1, 2, 0}});
  auto relaxed = GenerateRelaxedQueries(q, 1);
  ASSERT_TRUE(relaxed.ok());
  auto exact = ExactSubgraphSimilarityProbability(pg, *relaxed);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(*exact, 0.0);
  VerifierOptions options;
  options.mc.max_samples = 1000;
  auto smp = SampleSubgraphSimilarityProbability(pg, *relaxed, options, &rng);
  ASSERT_TRUE(smp.ok());
  EXPECT_DOUBLE_EQ(*smp, 0.0);
}

TEST(VerifierTest, EventCapsSurfaceAsErrors) {
  Rng rng(1031);
  const Graph g = RandomGraph(&rng, 10, 8, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  const Graph q = MakePath(3, 0);
  auto relaxed = GenerateRelaxedQueries(q, 1);
  ASSERT_TRUE(relaxed.ok());
  VerifierOptions options;
  options.max_embeddings_per_rq = 1;
  auto events = CollectSimilarityEvents(pg, *relaxed, options);
  if (!events.ok()) {
    EXPECT_EQ(events.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(VerifierTest, MonotoneInDelta) {
  // Relaxing more can only increase SSP.
  Rng rng(1033);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 1);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    const Graph q = RandomGraph(&rng, 4, 2, 1);
    double prev = -1.0;
    for (uint32_t delta = 0; delta < q.NumEdges() && delta <= 2; ++delta) {
      auto relaxed = GenerateRelaxedQueries(q, delta);
      ASSERT_TRUE(relaxed.ok());
      auto exact = ExactSubgraphSimilarityProbability(pg, *relaxed);
      ASSERT_TRUE(exact.ok());
      EXPECT_GE(*exact, prev - 1e-9);
      prev = *exact;
    }
  }
}

TEST(VerifierTest, TreeModelSspAgreesWithWorldEnumeration) {
  // Overlapping ne sets exercise the Shannon exact engine end to end.
  const Graph g = MakeGraph({0, 0, 0, 0},
                            {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {2, 3, 0}});
  Rng rng(1039);
  std::vector<double> w1(8), w2(4);
  for (auto& w : w1) w = 0.05 + rng.UniformDouble();
  for (auto& w : w2) w = 0.05 + rng.UniformDouble();
  NeighborEdgeSet ne1, ne2;
  ne1.edges = {0, 1, 2};  // share v0
  ne1.table = JointProbTable::FromWeights(w1).value();
  ne2.edges = {2, 3};  // share v3, overlap on edge 2
  ne2.table = JointProbTable::FromWeights(w2).value();
  auto pg = ProbabilisticGraph::Create(g, {ne1, ne2});
  ASSERT_TRUE(pg.ok());
  ASSERT_EQ(pg->kind(), JointModelKind::kTree);
  const Graph q = MakePath(3, 0);
  auto relaxed = GenerateRelaxedQueries(q, 1);
  ASSERT_TRUE(relaxed.ok());
  auto exact_dnf = ExactSubgraphSimilarityProbability(*pg, *relaxed);
  ASSERT_TRUE(exact_dnf.ok());
  auto exact_world = ExactSspByWorldEnumeration(*pg, q, 1);
  ASSERT_TRUE(exact_world.ok());
  EXPECT_NEAR(*exact_dnf, *exact_world, 1e-9);
}

}  // namespace
}  // namespace pgsim
