// Determinism of the parallel offline pipeline: feature mining, PMI
// construction, and StructuralFilter construction must be byte-identical at
// every thread count (the parallel phases fan per-item work out and merge
// slots in input order), and queries against a parallel-built index must
// answer exactly like queries against a sequential-built one.

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>

#include "pgsim/common/thread_pool.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/mining/feature_miner.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

std::vector<ProbabilisticGraph> MakeDatabase(uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = 18;
  options.avg_vertices = 9;
  options.edge_factor = 1.4;
  options.num_vertex_labels = 3;
  options.seed = seed;
  return GenerateDatabase(options).value();
}

PmiBuildOptions FastBuild(uint32_t num_threads) {
  PmiBuildOptions build;
  build.miner.alpha = 0.0;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 4;
  build.sip.mc.min_samples = 300;
  build.sip.mc.max_samples = 300;
  build.num_threads = num_threads;
  return build;
}

std::string SaveToBytes(const ProbabilisticMatrixIndex& pmi,
                        const std::string& tag) {
  const std::string path = ::testing::TempDir() + "pgsim_pmi_" + tag + ".bin";
  EXPECT_TRUE(pmi.Save(path).ok());
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(ParallelBuildTest, MinedFeaturesAreIdenticalAtAnyThreadCount) {
  const auto db = MakeDatabase(9001);
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());

  FeatureMinerOptions options;
  options.alpha = 0.0;
  options.beta = 0.2;
  options.gamma = -1.0;
  options.max_vertices = 4;

  options.num_threads = 1;
  const FeatureSet sequential = MineFeatures(certain, options).value();
  for (uint32_t threads : {2u, 4u, ThreadPool::DefaultThreads()}) {
    options.num_threads = threads;
    const FeatureSet parallel = MineFeatures(certain, options).value();
    ASSERT_EQ(parallel.features.size(), sequential.features.size())
        << "threads=" << threads;
    for (size_t fi = 0; fi < sequential.features.size(); ++fi) {
      const Feature& a = sequential.features[fi];
      const Feature& b = parallel.features[fi];
      EXPECT_EQ(a.graph.VertexLabels(), b.graph.VertexLabels()) << fi;
      ASSERT_EQ(a.graph.NumEdges(), b.graph.NumEdges()) << fi;
      for (EdgeId e = 0; e < a.graph.NumEdges(); ++e) {
        EXPECT_EQ(a.graph.GetEdge(e).u, b.graph.GetEdge(e).u);
        EXPECT_EQ(a.graph.GetEdge(e).v, b.graph.GetEdge(e).v);
        EXPECT_EQ(a.graph.GetEdge(e).label, b.graph.GetEdge(e).label);
      }
      EXPECT_EQ(a.support, b.support) << fi;
      EXPECT_EQ(a.frequency, b.frequency) << fi;
      EXPECT_EQ(a.discriminative, b.discriminative) << fi;
    }
    // Work counters are deterministic too (all slots always evaluated).
    EXPECT_EQ(parallel.candidates_examined, sequential.candidates_examined);
    EXPECT_EQ(parallel.isomorphism_tests, sequential.isomorphism_tests);
  }
}

TEST(ParallelBuildTest, PmiSerializationIsByteIdenticalAtAnyThreadCount) {
  const auto db = MakeDatabase(9002);
  const auto sequential =
      ProbabilisticMatrixIndex::Build(db, FastBuild(1)).value();
  EXPECT_EQ(sequential.stats().build_threads, 1u);
  const std::string sequential_bytes = SaveToBytes(sequential, "seq");
  ASSERT_FALSE(sequential_bytes.empty());

  for (uint32_t threads : {2u, 4u, ThreadPool::DefaultThreads()}) {
    const auto parallel =
        ProbabilisticMatrixIndex::Build(db, FastBuild(threads)).value();
    EXPECT_EQ(parallel.stats().build_threads, threads);
    EXPECT_EQ(SaveToBytes(parallel, "par" + std::to_string(threads)),
              sequential_bytes)
        << "threads=" << threads;
  }
}

TEST(ParallelBuildTest, PmiBuildOnCallerOwnedPoolMatches) {
  const auto db = MakeDatabase(9002);
  const std::string sequential_bytes = SaveToBytes(
      ProbabilisticMatrixIndex::Build(db, FastBuild(1)).value(), "seq2");
  ThreadPool pool(3);
  PmiBuildOptions build = FastBuild(0);
  build.pool = &pool;
  const auto parallel = ProbabilisticMatrixIndex::Build(db, build).value();
  EXPECT_EQ(parallel.stats().build_threads, 3u);
  EXPECT_EQ(SaveToBytes(parallel, "pool"), sequential_bytes);
}

TEST(ParallelBuildTest, StructuralFilterTableIsIdenticalAtAnyThreadCount) {
  const auto db = MakeDatabase(9003);
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  const auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild(1)).value();

  StructuralFilterOptions options;
  options.num_threads = 1;
  const StructuralFilter sequential =
      StructuralFilter::Build(certain, pmi.features(), options);
  EXPECT_EQ(sequential.build_stats().build_threads, 1u);
  EXPECT_GT(sequential.build_stats().counted_pairs, 0u);

  for (uint32_t threads : {2u, 4u, ThreadPool::DefaultThreads()}) {
    options.num_threads = threads;
    const StructuralFilter parallel =
        StructuralFilter::Build(certain, pmi.features(), options);
    EXPECT_EQ(parallel.build_stats().build_threads, threads);
    EXPECT_EQ(parallel.counts(), sequential.counts())
        << "threads=" << threads;
  }
}

TEST(ParallelBuildTest, QueriesAgainstParallelBuiltIndexMatchSequential) {
  const auto db = MakeDatabase(9004);
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());

  const auto seq_pmi = ProbabilisticMatrixIndex::Build(db, FastBuild(1)).value();
  const auto par_pmi = ProbabilisticMatrixIndex::Build(db, FastBuild(4)).value();
  StructuralFilterOptions fopt;
  fopt.num_threads = 1;
  const StructuralFilter seq_filter =
      StructuralFilter::Build(certain, seq_pmi.features(), fopt);
  fopt.num_threads = 4;
  const StructuralFilter par_filter =
      StructuralFilter::Build(certain, par_pmi.features(), fopt);

  Rng qrng(9005);
  std::vector<Graph> queries;
  while (queries.size() < 6) {
    auto q = ExtractQuery(certain[qrng.Uniform(certain.size())], 4, &qrng);
    if (q.ok()) queries.push_back(std::move(q).value());
  }
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.4;
  options.verifier.mc.min_samples = 300;
  options.verifier.mc.max_samples = 300;

  const QueryProcessor seq_proc(&db, &seq_pmi, &seq_filter);
  const QueryProcessor par_proc(&db, &par_pmi, &par_filter);
  const auto seq_results = seq_proc.QueryBatch(queries, options);
  const auto par_results = par_proc.QueryBatch(queries, options);
  ASSERT_EQ(seq_results.size(), par_results.size());
  for (size_t i = 0; i < seq_results.size(); ++i) {
    ASSERT_TRUE(seq_results[i].status.ok());
    ASSERT_TRUE(par_results[i].status.ok());
    EXPECT_EQ(par_results[i].answers, seq_results[i].answers) << "query " << i;
  }
}

}  // namespace
}  // namespace pgsim
