// Tests for the cross-batch AnswerCache: probe/store mechanics, exact
// epoch-based invalidation (mutations can never leak stale answers),
// exact-key conflicts between isomorphic-but-relabeled queries, LRU
// eviction, and the QueryProcessor/QueryBatch integration including the
// BatchStats counter deltas.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/answer_cache.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

Graph Triangle(LabelId a, LabelId b, LabelId c) {
  GraphBuilder builder;
  const VertexId va = builder.AddVertex(a);
  const VertexId vb = builder.AddVertex(b);
  const VertexId vc = builder.AddVertex(c);
  EXPECT_TRUE(builder.AddEdge(va, vb, 0).ok());
  EXPECT_TRUE(builder.AddEdge(vb, vc, 0).ok());
  EXPECT_TRUE(builder.AddEdge(va, vc, 0).ok());
  return builder.Build();
}

TEST(AnswerCacheTest, MissStoreHit) {
  AnswerCache cache;
  const Graph q = Triangle(0, 1, 2);
  const std::string fp = "options-v1";

  AnswerCache::Probe probe = cache.Find(q, fp, /*epoch=*/0);
  EXPECT_TRUE(probe.cacheable);
  EXPECT_FALSE(probe.hit);
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.Store(probe, /*epoch=*/0, {3, 7, 9});
  EXPECT_EQ(cache.size(), 1u);

  const AnswerCache::Probe again = cache.Find(q, fp, /*epoch=*/0);
  ASSERT_TRUE(again.hit);
  EXPECT_EQ(*again.answers, (std::vector<uint32_t>{3, 7, 9}));
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different options fingerprint addresses a different slot.
  EXPECT_FALSE(cache.Find(q, "options-v2", 0).hit);
}

TEST(AnswerCacheTest, EpochMismatchDropsEntry) {
  AnswerCache cache;
  const Graph q = Triangle(0, 1, 2);
  AnswerCache::Probe probe = cache.Find(q, "fp", 0);
  cache.Store(probe, 0, {1});

  // The index mutated: the entry must never be served again.
  const AnswerCache::Probe stale = cache.Find(q, "fp", /*epoch=*/1);
  EXPECT_FALSE(stale.hit);
  EXPECT_EQ(cache.stats().stale, 1u);
  EXPECT_EQ(cache.size(), 0u);  // dropped eagerly (epochs are monotone)

  // Recompute under the new epoch and it serves again.
  cache.Store(stale, 1, {2});
  EXPECT_TRUE(cache.Find(q, "fp", 1).hit);
  EXPECT_EQ(cache.stats().stale, 1u);
}

TEST(AnswerCacheTest, ExactKeyConflictIsNeverServed) {
  // Same isomorphism class (one canonical slot), different vertex order:
  // sampled verdicts may differ, so the hit must be refused and counted.
  AnswerCache cache;
  const Graph q1 = Triangle(0, 1, 2);
  const Graph q2 = Triangle(2, 1, 0);  // isomorphic, different labeling
  AnswerCache::Probe p1 = cache.Find(q1, "fp", 0);
  ASSERT_TRUE(p1.cacheable);
  cache.Store(p1, 0, {4});

  const AnswerCache::Probe p2 = cache.Find(q2, "fp", 0);
  ASSERT_EQ(p2.key, p1.key);  // same canonical bucket...
  EXPECT_NE(p2.exact_key, p1.exact_key);
  EXPECT_FALSE(p2.hit);  // ...but never served across exact keys
  EXPECT_EQ(cache.stats().conflicts, 1u);
  // The original entry survives a conflict; its own query still hits.
  EXPECT_TRUE(cache.Find(q1, "fp", 0).hit);
}

TEST(AnswerCacheTest, LruEviction) {
  AnswerCacheOptions options;
  options.max_entries = 2;
  AnswerCache cache(options);
  const Graph a = Triangle(0, 0, 0);
  const Graph b = Triangle(1, 1, 1);
  const Graph c = Triangle(2, 2, 2);
  cache.Store(cache.Find(a, "fp", 0), 0, {1});
  cache.Store(cache.Find(b, "fp", 0), 0, {2});
  // Touch `a` so `b` is the LRU victim when `c` lands.
  EXPECT_TRUE(cache.Find(a, "fp", 0).hit);
  cache.Store(cache.Find(c, "fp", 0), 0, {3});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Find(a, "fp", 0).hit);
  EXPECT_FALSE(cache.Find(b, "fp", 0).hit);
  EXPECT_TRUE(cache.Find(c, "fp", 0).hit);
}

TEST(AnswerCacheTest, OptionsFingerprintSeparatesAnswerAffectingKnobs) {
  QueryOptions a;
  QueryOptions b = a;
  EXPECT_EQ(QueryOptionsFingerprint(a), QueryOptionsFingerprint(b));
  b.epsilon = 0.75;
  EXPECT_NE(QueryOptionsFingerprint(a), QueryOptionsFingerprint(b));
  // Execution-only knobs must NOT fragment the key space.
  QueryOptions c = a;
  c.verify_threads = 8;
  EXPECT_EQ(QueryOptionsFingerprint(a), QueryOptionsFingerprint(c));
}

// ---------------------------------------------------------------------------
// QueryBatch integration.
// ---------------------------------------------------------------------------

struct BatchSetup {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
};

BatchSetup BuildBatchSetup(uint64_t seed, size_t n) {
  BatchSetup s;
  SyntheticOptions gen;
  gen.num_graphs = n;
  gen.avg_vertices = 9;
  gen.num_vertex_labels = 4;
  gen.seed = seed;
  s.db = GenerateDatabase(gen).value();
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 2000;
  build.sip.mc.max_samples = 2000;
  s.pmi = ProbabilisticMatrixIndex::Build(s.db, build).value();
  for (const auto& g : s.db) s.certain.push_back(g.certain());
  s.filter = StructuralFilter::Build(s.certain, s.pmi.features(),
                                     StructuralFilterOptions());
  return s;
}

TEST(AnswerCacheBatchTest, RepeatedBatchesHitAndMutationsInvalidate) {
  BatchSetup s = BuildBatchSetup(8009, 8);
  auto extra_gen = [&] {
    SyntheticOptions gen;
    gen.num_graphs = 1;
    gen.avg_vertices = 9;
    gen.num_vertex_labels = 4;
    gen.seed = 8011;
    return GenerateDatabase(gen).value()[0];
  };
  const ProbabilisticGraph extra = extra_gen();
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);

  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.3;
  options.seed = 11;
  const std::vector<Graph> queries = {s.db[0].certain(), s.db[3].certain(),
                                      s.db[6].certain()};
  AnswerCache answer_cache;
  BatchOptions batch;
  batch.num_threads = 1;  // deterministic hit/miss split
  batch.answer_cache = &answer_cache;

  // Pass 1: all misses, cache fills.
  BatchStats stats1;
  const auto run1 = processor.QueryBatch(queries, options, batch, &stats1);
  EXPECT_EQ(stats1.answer_cache_hits, 0u);
  EXPECT_EQ(stats1.answer_cache_misses, queries.size());
  EXPECT_EQ(answer_cache.size(), queries.size());

  // Pass 2: every query served from cache, answers bit-identical, stage
  // counters prove the pipeline was skipped.
  BatchStats stats2;
  const auto run2 = processor.QueryBatch(queries, options, batch, &stats2);
  EXPECT_EQ(stats2.answer_cache_hits, queries.size());
  EXPECT_EQ(stats2.answer_cache_misses, 0u);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ASSERT_TRUE(run2[qi].status.ok());
    EXPECT_EQ(run2[qi].answers, run1[qi].answers) << "query " << qi;
    EXPECT_TRUE(run2[qi].stats.answer_cache_hit);
    EXPECT_EQ(run2[qi].stats.structural_candidates, 0u);
    EXPECT_EQ(run2[qi].stats.verification_candidates, 0u);
  }

  // Mutate (add then remove the same graph): the epoch moves, so every
  // cached answer is stale — zero hits, and the recomputed answers match
  // pass 1 exactly (the round trip is answer-preserving).
  const uint64_t epoch_before = processor.epoch();
  auto id = processor.AddGraph(extra, 99);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(processor.RemoveGraph(*id).ok());
  EXPECT_GT(processor.epoch(), epoch_before);

  BatchStats stats3;
  const auto run3 = processor.QueryBatch(queries, options, batch, &stats3);
  EXPECT_EQ(stats3.answer_cache_hits, 0u);
  EXPECT_EQ(stats3.answer_cache_stale, queries.size());
  EXPECT_EQ(stats3.answer_cache_misses, queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ASSERT_TRUE(run3[qi].status.ok());
    EXPECT_EQ(run3[qi].answers, run1[qi].answers) << "query " << qi;
    EXPECT_FALSE(run3[qi].stats.answer_cache_hit);
  }

  // Pass 4: refilled under the new epoch, hits resume.
  BatchStats stats4;
  const auto run4 = processor.QueryBatch(queries, options, batch, &stats4);
  EXPECT_EQ(stats4.answer_cache_hits, queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(run4[qi].answers, run1[qi].answers);
  }
}

TEST(AnswerCacheBatchTest, StealingSchedulerUsesTheCacheToo) {
  BatchSetup s = BuildBatchSetup(8017, 8);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.3;
  options.seed = 13;
  const std::vector<Graph> queries = {s.db[1].certain(), s.db[2].certain(),
                                      s.db[5].certain(), s.db[7].certain()};
  AnswerCache answer_cache;
  BatchOptions batch;
  batch.scheduler = BatchOptions::Scheduler::kStealing;
  batch.num_threads = 3;
  batch.answer_cache = &answer_cache;

  const auto run1 = processor.QueryBatch(queries, options, batch);
  BatchStats stats2;
  const auto run2 = processor.QueryBatch(queries, options, batch, &stats2);
  EXPECT_EQ(stats2.answer_cache_hits, queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ASSERT_TRUE(run2[qi].status.ok());
    EXPECT_EQ(run2[qi].answers, run1[qi].answers) << "query " << qi;
  }
}

TEST(AnswerCacheBatchTest, CacheOffIsUnchangedBehavior) {
  BatchSetup s = BuildBatchSetup(8021, 6);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.3;
  const std::vector<Graph> queries = {s.db[0].certain(), s.db[2].certain()};
  AnswerCache answer_cache;
  BatchOptions with_cache;
  with_cache.num_threads = 1;
  with_cache.answer_cache = &answer_cache;
  BatchOptions without_cache;
  without_cache.num_threads = 1;

  const auto cold = processor.QueryBatch(queries, options, without_cache);
  processor.QueryBatch(queries, options, with_cache);  // fill
  const auto warm = processor.QueryBatch(queries, options, with_cache);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(warm[qi].answers, cold[qi].answers) << "query " << qi;
  }
}

}  // namespace
}  // namespace pgsim
