// Tests for PR 3's verification engine: the scratch-threaded,
// support-restricted Karp-Luby sampler and the intra-query parallel
// candidate fan-out.
//
//   * sampled-vs-exact agreement within the tau/xi tolerance on small
//     seeded graphs, for partition AND tree (overlapping ne set) models;
//   * byte-identical pipeline answers at verify_threads = 1/2/4/all;
//   * steady-state scratch reuse: a second pass over the same workload
//     performs no event-pool growth;
//   * determinism: same RNG state => bit-identical estimate, with a fresh
//     or a dirty reused scratch, and legacy wrapper == scratch API;
//   * the inclusive embedding caps (satellite fix: a relaxed query with
//     exactly max_embeddings_per_rq embeddings, or a candidate with exactly
//     max_total_embeddings events, must NOT error);
//   * BuildEdgeSubsetGraph (the world-enumeration fast path) matches a
//     GraphBuilder-built world.

#include <gtest/gtest.h>

#include "pgsim/common/thread_pool.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/verifier.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

// Overlapping ne sets (kTree): two vertex-anchored groups sharing edge 2.
ProbabilisticGraph MakeTreeModelGraph(Rng* rng) {
  const Graph g = MakeGraph({0, 0, 0, 0},
                            {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {2, 3, 0}});
  std::vector<double> w1(8), w2(4);
  for (auto& w : w1) w = 0.05 + rng->UniformDouble();
  for (auto& w : w2) w = 0.05 + rng->UniformDouble();
  NeighborEdgeSet ne1, ne2;
  ne1.edges = {0, 1, 2};
  ne1.table = JointProbTable::FromWeights(w1).value();
  ne2.edges = {2, 3};
  ne2.table = JointProbTable::FromWeights(w2).value();
  auto pg = ProbabilisticGraph::Create(g, {ne1, ne2});
  EXPECT_TRUE(pg.ok());
  EXPECT_EQ(pg->kind(), JointModelKind::kTree);
  return std::move(pg).value();
}

TEST(VerifierEngineTest, SampledMatchesExactWithinTolerance_Partition) {
  Rng rng(9001);
  VerifierOptions options;
  options.mc.xi = 0.05;
  options.mc.tau = 0.03;
  options.mc.max_samples = 50'000;
  VerifierScratch scratch;
  int checked = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 2);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    const Graph q = RandomGraph(&rng, 4, 1, 2);
    for (uint32_t delta = 0; delta <= 1 && delta < q.NumEdges(); ++delta) {
      auto relaxed = GenerateRelaxedQueries(q, delta);
      ASSERT_TRUE(relaxed.ok());
      auto exact = ExactSubgraphSimilarityProbability(pg, *relaxed, options,
                                                      &scratch);
      ASSERT_TRUE(exact.ok());
      auto smp = SampleSubgraphSimilarityProbability(pg, *relaxed, options,
                                                     &rng, &scratch);
      ASSERT_TRUE(smp.ok());
      EXPECT_NEAR(*smp, *exact, 0.05) << "trial=" << trial
                                      << " delta=" << delta;
      ++checked;
    }
  }
  EXPECT_GT(checked, 4);
}

TEST(VerifierEngineTest, SampledMatchesExactWithinTolerance_TreeModel) {
  Rng rng(9011);
  VerifierOptions options;
  options.mc.xi = 0.05;
  options.mc.tau = 0.03;
  options.mc.max_samples = 50'000;
  VerifierScratch scratch;
  for (int trial = 0; trial < 4; ++trial) {
    const ProbabilisticGraph pg = MakeTreeModelGraph(&rng);
    const Graph q = MakePath(3, 0);
    auto relaxed = GenerateRelaxedQueries(q, 1);
    ASSERT_TRUE(relaxed.ok());
    auto exact = ExactSubgraphSimilarityProbability(pg, *relaxed, options,
                                                    &scratch);
    ASSERT_TRUE(exact.ok());
    auto smp = SampleSubgraphSimilarityProbability(pg, *relaxed, options,
                                                   &rng, &scratch);
    ASSERT_TRUE(smp.ok());
    EXPECT_NEAR(*smp, *exact, 0.05) << "trial=" << trial;
  }
}

TEST(VerifierEngineTest, ScratchReuseAndDeterminism) {
  Rng rng(9021);
  const Graph g = RandomGraph(&rng, 7, 4, 2);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  const Graph q = RandomGraph(&rng, 4, 1, 2);
  auto relaxed = GenerateRelaxedQueries(q, 1);
  ASSERT_TRUE(relaxed.ok());
  VerifierOptions options;
  options.mc.min_samples = 2000;
  options.mc.max_samples = 2000;

  // Same RNG state => bit-identical estimate, fresh scratch vs dirty reused
  // scratch vs the legacy (scratch-free) wrapper.
  VerifierScratch fresh;
  Rng r1(77);
  auto a = SampleSubgraphSimilarityProbability(pg, *relaxed, options, &r1,
                                               &fresh);
  ASSERT_TRUE(a.ok());
  Rng r2(77);
  auto b = SampleSubgraphSimilarityProbability(pg, *relaxed, options, &r2,
                                               &fresh);  // dirty reuse
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  Rng r3(77);
  auto c = SampleSubgraphSimilarityProbability(pg, *relaxed, options, &r3);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a, *c);
}

TEST(VerifierEngineTest, SecondPassPerformsNoPoolGrowth) {
  // A small workload of candidates; after one full pass the scratch has
  // seen the largest candidate, so a second pass must not grow the pool.
  SyntheticOptions dataset;
  dataset.num_graphs = 8;
  dataset.avg_vertices = 10;
  dataset.num_vertex_labels = 3;
  dataset.seed = 9031;
  const auto db = GenerateDatabase(dataset).value();
  Rng qrng(9032);
  const Graph q = ExtractQuery(db[0].certain(), 4, &qrng).value();
  auto relaxed = GenerateRelaxedQueries(q, 1);
  ASSERT_TRUE(relaxed.ok());
  VerifierOptions options;
  options.mc.min_samples = 300;
  options.mc.max_samples = 300;

  VerifierScratch scratch;
  Rng rng(9033);
  for (const auto& g : db) {
    (void)SampleSubgraphSimilarityProbability(g, *relaxed, options, &rng,
                                              &scratch);
  }
  const size_t capacity_after_first = scratch.PoolCapacityWords();
  EXPECT_GT(capacity_after_first, 0u);
  for (const auto& g : db) {
    (void)SampleSubgraphSimilarityProbability(g, *relaxed, options, &rng,
                                              &scratch);
  }
  EXPECT_EQ(scratch.PoolCapacityWords(), capacity_after_first);
}

TEST(VerifierEngineTest, AnswersByteIdenticalAcrossVerifyThreads) {
  SyntheticOptions dataset;
  dataset.num_graphs = 20;
  dataset.avg_vertices = 10;
  dataset.num_vertex_labels = 3;
  dataset.seed = 9041;
  const auto db = GenerateDatabase(dataset).value();
  const QueryProcessor processor(&db, nullptr, nullptr);
  Rng qrng(9042);
  std::vector<Graph> queries;
  while (queries.size() < 4) {
    auto q = ExtractQuery(db[qrng.Uniform(db.size())].certain(), 4, &qrng);
    if (q.ok()) queries.push_back(std::move(q).value());
  }
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.3;
  options.verifier.mc.min_samples = 500;
  options.verifier.mc.max_samples = 500;

  // Reference: sequential verification.
  std::vector<std::vector<uint32_t>> reference;
  std::vector<QueryStats> reference_stats(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto answers = processor.Query(queries[i], options, &reference_stats[i]);
    ASSERT_TRUE(answers.ok());
    reference.push_back(std::move(answers).value());
    ASSERT_GT(reference_stats[i].verification_candidates, 0u)
        << "workload must exercise stage 3";
  }

  for (const uint32_t verify_threads : {2u, 4u, 0u}) {
    QueryOptions opt = options;
    opt.verify_threads = verify_threads;
    QueryContext ctx;
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats stats;
      auto answers = processor.Query(queries[i], opt, &ctx, &stats);
      ASSERT_TRUE(answers.ok());
      EXPECT_EQ(*answers, reference[i])
          << "query " << i << " verify_threads=" << verify_threads;
      EXPECT_EQ(stats.verification_failures,
                reference_stats[i].verification_failures);
      EXPECT_EQ(stats.answers, reference_stats[i].answers);
    }
  }
}

TEST(VerifierEngineTest, PerRqCapIsInclusive) {
  // A single-edge pattern has exactly 4 embeddings in a 5-path: a cap of 4
  // must succeed (the old collector reported truncation at exactly-cap),
  // and a cap of 3 must error.
  Rng rng(9051);
  const Graph target = MakePath(5);
  const ProbabilisticGraph pg = RandomProbGraph(target, &rng);
  const Graph q = MakePath(2);
  auto relaxed = GenerateRelaxedQueries(q, 0);
  ASSERT_TRUE(relaxed.ok());
  VerifierOptions options;

  options.max_embeddings_per_rq = 4;
  auto ok = CollectSimilarityEvents(pg, *relaxed, options);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 4u);

  options.max_embeddings_per_rq = 3;
  auto err = CollectSimilarityEvents(pg, *relaxed, options);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kResourceExhausted);
}

TEST(VerifierEngineTest, TotalCapIsInclusive) {
  Rng rng(9053);
  const Graph target = MakePath(5);
  const ProbabilisticGraph pg = RandomProbGraph(target, &rng);
  const Graph q = MakePath(2);
  auto relaxed = GenerateRelaxedQueries(q, 0);
  ASSERT_TRUE(relaxed.ok());
  VerifierOptions options;

  options.max_total_embeddings = 4;  // exactly the distinct event count
  auto ok = CollectSimilarityEvents(pg, *relaxed, options);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 4u);

  options.max_total_embeddings = 3;
  auto err = CollectSimilarityEvents(pg, *relaxed, options);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kResourceExhausted);
}

TEST(VerifierEngineTest, DedupTableGrowthKeepsEveryDistinctEvent) {
  // A star with 800 leaves gives a single-edge query exactly 800 distinct
  // one-edge events — enough to force the open-addressing dedup table to
  // grow mid-collection (default table: 1024 slots, grows at the 769th
  // insert). Regression test: growth must not rehash the in-flight row,
  // which used to make the triggering event a "duplicate of itself" and
  // silently drop it.
  constexpr uint32_t kLeaves = 800;
  GraphBuilder builder;
  const VertexId hub = builder.AddVertex(0);
  std::vector<NeighborEdgeSet> ne_sets;
  for (uint32_t i = 0; i < kLeaves; ++i) {
    const VertexId leaf = builder.AddVertex(1);
    auto e = builder.AddEdge(hub, leaf, 0);
    ASSERT_TRUE(e.ok());
    NeighborEdgeSet ne;
    ne.edges = {*e};
    ne.table = JointProbTable::Independent({0.5}).value();
    ne_sets.push_back(std::move(ne));
  }
  auto pg = ProbabilisticGraph::Create(builder.Build(), std::move(ne_sets));
  ASSERT_TRUE(pg.ok());
  const Graph q = MakeGraph({0, 1}, {{0, 1, 0}});
  VerifierOptions options;
  options.max_embeddings_per_rq = 0;  // uncapped (also pins 0's meaning)
  options.max_total_embeddings = 4096;
  auto events = CollectSimilarityEvents(*pg, {q}, options);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), kLeaves);
}

TEST(VerifierEngineTest, BuildEdgeSubsetGraphMatchesBuilder) {
  Rng rng(9061);
  const Graph base = RandomGraph(&rng, 8, 6, 3);
  Graph reused;
  for (int trial = 0; trial < 20; ++trial) {
    EdgeBitset present(base.NumEdges());
    for (EdgeId e = 0; e < base.NumEdges(); ++e) {
      if (rng.Bernoulli(0.5)) present.Set(e);
    }
    // Reference: the old per-world GraphBuilder path.
    GraphBuilder builder;
    for (VertexId v = 0; v < base.NumVertices(); ++v) {
      builder.AddVertex(base.VertexLabel(v));
    }
    for (uint32_t e : present.ToVector()) {
      const Edge& edge = base.GetEdge(e);
      ASSERT_TRUE(builder.AddEdge(edge.u, edge.v, edge.label).ok());
    }
    const Graph expected = builder.Build();

    BuildEdgeSubsetGraph(base, present, &reused);  // storage reused per trial
    ASSERT_EQ(reused.NumVertices(), expected.NumVertices());
    ASSERT_EQ(reused.NumEdges(), expected.NumEdges());
    EXPECT_EQ(reused.VertexLabels(), expected.VertexLabels());
    EXPECT_EQ(reused.AdjOffsets(), expected.AdjOffsets());
    for (EdgeId e = 0; e < reused.NumEdges(); ++e) {
      EXPECT_EQ(reused.GetEdge(e).u, expected.GetEdge(e).u);
      EXPECT_EQ(reused.GetEdge(e).v, expected.GetEdge(e).v);
      EXPECT_EQ(reused.GetEdge(e).label, expected.GetEdge(e).label);
    }
    for (VertexId v = 0; v < reused.NumVertices(); ++v) {
      const auto a = reused.Neighbors(v);
      const auto b = expected.Neighbors(v);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].neighbor, b[i].neighbor);
        EXPECT_EQ(a[i].edge, b[i].edge);
      }
    }
  }
}

}  // namespace
}  // namespace pgsim
