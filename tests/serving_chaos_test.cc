// Chaos soak for the serving core: concurrent submitters mix queries (all
// priority / deadline / degradation flavors), AddGraph/RemoveGraph churn,
// armed error failpoints on the serving sites, and overload shedding against
// a deliberately small admission queue — then the harness asserts the
// serving invariants that must survive ANY interleaving:
//
//   * every submitted ticket resolves EXACTLY once (resolve_count == 1,
//     stats().double_resolves == 0, and the resolution counters partition
//     the submitted count),
//   * every resolution carries a status from the allowed set,
//   * degraded results appear only where allow_degraded was set, and their
//     intervals are well-formed ([0,1], lo <= estimate <= hi),
//   * injected failpoint errors are accounted one-to-one in stats().failed,
//   * no resolved epoch exceeds the index's final epoch (no invented state).
//
// The suite is in its own binary so CI can run it under TSan with a bounded
// wall clock (see .github/workflows/ci.yml, chaos-soak job).

#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "pgsim/common/failpoint.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/answer_cache.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/serving/serving_core.h"

namespace pgsim {
namespace {

struct ChaosSetup {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
};

ChaosSetup BuildChaosSetup(uint64_t seed, size_t n) {
  ChaosSetup s;
  SyntheticOptions gen;
  gen.num_graphs = n;
  gen.avg_vertices = 9;
  gen.num_vertex_labels = 4;
  gen.seed = seed;
  s.db = GenerateDatabase(gen).value();
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 2000;
  build.sip.mc.max_samples = 2000;
  s.pmi = ProbabilisticMatrixIndex::Build(s.db, build).value();
  for (const auto& g : s.db) s.certain.push_back(g.certain());
  s.filter = StructuralFilter::Build(s.certain, s.pmi.features(),
                                     StructuralFilterOptions());
  return s;
}

ProbabilisticGraph ChaosExtraGraph(uint64_t seed) {
  SyntheticOptions gen;
  gen.num_graphs = 1;
  gen.avg_vertices = 9;
  gen.num_vertex_labels = 4;
  gen.seed = seed;
  return GenerateDatabase(gen).value()[0];
}

// Deterministic per-thread mixer (SplitMix64) — the soak must not depend on
// the libc RNG or wall clock.
uint64_t Mix(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct TrackedTicket {
  QueryTicket ticket;
  bool is_query = false;
  bool allow_degraded = false;
  bool harvested = false;  ///< submitter already consumed this add's id
};

bool AllowedStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:  // injected failpoints
      return true;
    default:
      return false;
  }
}

TEST(ServingChaosTest, SoakResolvesEveryTicketExactlyOnce) {
  FailpointResetAll();
  ChaosSetup s = BuildChaosSetup(31337, 8);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  AnswerCache cache;

  ServingOptions so;
  so.num_threads = 4;
  so.max_queue = 16;  // small on purpose: shedding is part of the soak
  so.query.delta = 1;
  so.query.epsilon = 0.3;
  so.query.seed = 11;
  so.answer_cache = &cache;
  ServingCore core(&processor, so);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 96;

  std::mutex track_mu;
  std::vector<TrackedTicket> tracked;
  std::vector<uint32_t> added_ids;  // ids whose AddGraph resolved OK
  std::atomic<uint64_t> callbacks_fired{0};
  std::atomic<uint64_t> callbacks_expected{0};

  auto submitter = [&](int tid) {
    uint64_t rng = 0xC0FFEE + static_cast<uint64_t>(tid) * 7919;
    std::vector<TrackedTicket> local;
    for (int op = 0; op < kOpsPerThread; ++op) {
      const uint64_t roll = Mix(&rng) % 100;
      if (roll < 6) {
        // Arm a one-shot error failpoint on one of the serving sites. Any
        // in-flight or future ticket may absorb it; the accounting below
        // only needs fired-hit counts, not which ticket got hit.
        FailpointSpec spec;
        spec.mode = FailpointMode::kError;
        FailpointArm(roll % 2 == 0 ? "serving.query.front"
                                   : "serving.mutation.apply",
                     spec);
      } else if (roll < 14) {
        TrackedTicket t;
        t.ticket = core.SubmitAddGraph(
            ChaosExtraGraph(Mix(&rng)), Mix(&rng));
        local.push_back(std::move(t));
      } else if (roll < 20) {
        uint32_t victim = 0;
        bool have = false;
        {
          std::lock_guard<std::mutex> lock(track_mu);
          if (!added_ids.empty()) {
            victim = added_ids.back();
            added_ids.pop_back();
            have = true;
          }
        }
        if (have) {
          TrackedTicket t;
          t.ticket = core.SubmitRemoveGraph(victim);
          local.push_back(std::move(t));
        }
      } else {
        SubmitOptions opts;
        opts.priority = static_cast<int>(Mix(&rng) % 3);
        const uint64_t d = Mix(&rng) % 4;
        opts.deadline_ms = d == 0 ? 0 : (d == 1 ? 2 : -1);
        opts.allow_degraded = (Mix(&rng) % 2) == 0;
        if (Mix(&rng) % 4 == 0) opts.cancel_after_draws = 1 + Mix(&rng) % 8;
        if (Mix(&rng) % 8 == 0) {
          callbacks_expected.fetch_add(1);
          opts.callback = [&](const ServeResult&) {
            callbacks_fired.fetch_add(1);
          };
        }
        TrackedTicket t;
        t.is_query = true;
        t.allow_degraded = opts.allow_degraded;
        t.ticket =
            core.Submit(s.certain[Mix(&rng) % s.certain.size()], opts);
        local.push_back(std::move(t));
      }
      // Periodic backpressure: without it the submitters outrun the drain so
      // badly that nearly everything sheds and the execution paths (waves,
      // mutations, deadline cancels) go under-exercised.
      if (op % 8 == 7 && !local.empty()) local.back().ticket.Wait();
      // Harvest successful adds (once each) so removals target live ids.
      for (auto& t : local) {
        if (t.is_query || t.harvested || !t.ticket.resolved()) continue;
        t.harvested = true;
        const ServeResult& r = t.ticket.Wait();
        if (r.status.ok() && r.graph_id != 0) {
          std::lock_guard<std::mutex> lock(track_mu);
          added_ids.push_back(r.graph_id);
        }
      }
    }
    std::lock_guard<std::mutex> lock(track_mu);
    for (auto& t : local) tracked.push_back(std::move(t));
  };

  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) threads.emplace_back(submitter, tid);
  for (auto& t : threads) t.join();

  // Drain everything, then stop.
  for (auto& t : tracked) t.ticket.Wait();
  core.Shutdown();

  const uint64_t final_epoch = processor.epoch();
  uint64_t degraded_seen = 0;
  for (const auto& t : tracked) {
    const ServeResult& r = t.ticket.state()->Wait();
    // Exactly-once: the first Resolve won and nothing else even tried.
    EXPECT_EQ(t.ticket.state()->resolve_count.load(), 1u)
        << "ticket " << t.ticket.id();
    EXPECT_TRUE(AllowedStatus(r.status))
        << "ticket " << t.ticket.id() << ": " << r.status.message();
    EXPECT_LE(r.epoch, final_epoch);
    if (r.degraded) {
      ++degraded_seen;
      EXPECT_TRUE(t.allow_degraded);
      EXPECT_TRUE(r.status.ok());
    } else {
      EXPECT_TRUE(r.intervals.empty());
    }
    for (const auto& ia : r.intervals) {
      EXPECT_LE(0.0, ia.lo);
      EXPECT_LE(ia.lo, ia.estimate);
      EXPECT_LE(ia.estimate, ia.hi);
      EXPECT_LE(ia.hi, 1.0);
    }
    if (r.status.code() == StatusCode::kUnavailable) {
      EXPECT_GT(r.retry_after_seconds, 0.0);
    }
  }

  const ServingStats st = core.stats();
  EXPECT_EQ(st.double_resolves, 0u);
  EXPECT_EQ(st.submitted, tracked.size());
  // The resolution counters partition the submitted tickets: every ticket
  // landed in exactly one bucket (cache hits count inside `completed`).
  EXPECT_EQ(st.completed + st.degraded + st.deadline_exceeded + st.failed +
                st.shed,
            st.submitted);
  EXPECT_EQ(st.degraded, degraded_seen);
  // Injected faults are accounted one-to-one: the only kInternal sources in
  // the soak are the two serving failpoint sites.
  EXPECT_EQ(st.failed, FailpointHits("serving.query.front") +
                           FailpointHits("serving.mutation.apply"));
  EXPECT_EQ(callbacks_fired.load(), callbacks_expected.load());
  // One line for CI triage: how the soak's tickets actually distributed.
  std::cout << "[soak] completed=" << st.completed
            << " degraded=" << st.degraded
            << " deadline=" << st.deadline_exceeded << " failed=" << st.failed
            << " shed=" << st.shed << " cache_hits=" << st.answer_cache_hits
            << " mutations=" << st.mutations_applied << " waves=" << st.waves
            << std::endl;
  FailpointResetAll();
}

// Shutdown under load: every queued ticket must still resolve exactly once —
// the drain guarantee — and submits AFTER shutdown shed cleanly.
TEST(ServingChaosTest, ShutdownUnderLoadDrainsEveryTicket) {
  FailpointResetAll();
  ChaosSetup s = BuildChaosSetup(42424, 6);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);

  ServingOptions so;
  so.num_threads = 2;
  so.max_queue = 64;
  so.query.delta = 1;
  so.query.epsilon = 0.3;
  so.query.seed = 11;
  ServingCore core(&processor, so);

  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 32; ++i) {
    SubmitOptions opts;
    opts.priority = i % 3;
    if (i % 5 == 0) {
      tickets.push_back(
          core.SubmitAddGraph(ChaosExtraGraph(777 + i), i));
    } else {
      tickets.push_back(core.Submit(s.certain[i % s.certain.size()], opts));
    }
  }
  core.Shutdown();

  for (auto& t : tickets) {
    const ServeResult& r = t.Wait();
    EXPECT_EQ(t.state()->resolve_count.load(), 1u);
    EXPECT_TRUE(AllowedStatus(r.status)) << r.status.message();
  }
  QueryTicket late = core.Submit(s.certain[0]);
  EXPECT_EQ(late.Wait().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(core.stats().double_resolves, 0u);
}

}  // namespace
}  // namespace pgsim
