// Equivalence suite for the compiled VF2 matching engine: pins the
// plan-based iterative matcher against the retained recursive reference
// path (EnumerateEmbeddingsReference) and the independent brute-force
// oracle — embedding *sets* are order-insensitive, reported counts are
// bit-identical, and default-plan enumeration preserves the reference
// order byte for byte (offline artifacts depend on it). Also covers the
// vertex-by-label index, rarest-label seed ordering, the inclusive
// max_embeddings truncation contract, dedup interaction, and the
// no-scratch-growth steady-state pin.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pgsim/graph/vf2.h"
#include "pgsim/query/verifier.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::BruteForceEmbeddings;
using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::MakeTriangle;
using ::pgsim::testing::RandomProbGraph;

// Random labeled graph with random *edge* labels too (test_util's RandomGraph
// keeps all edge labels 0, which would leave the engine's edge-label
// constraints untested).
Graph RandomMultiLabelGraph(Rng* rng, uint32_t n, uint32_t extra,
                            uint32_t vertex_labels, uint32_t edge_labels) {
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddVertex(static_cast<LabelId>(rng->Uniform(vertex_labels)));
  }
  for (uint32_t v = 1; v < n; ++v) {
    auto r = builder.AddEdge(static_cast<VertexId>(rng->Uniform(v)), v,
                             static_cast<LabelId>(rng->Uniform(edge_labels)));
    (void)r;
  }
  for (uint32_t i = 0; i < extra; ++i) {
    const VertexId a = static_cast<VertexId>(rng->Uniform(n));
    const VertexId b = static_cast<VertexId>(rng->Uniform(n));
    if (a == b) continue;
    auto r = builder.AddEdge(a, b,
                             static_cast<LabelId>(rng->Uniform(edge_labels)));
    (void)r;
  }
  return builder.Build();
}

// A disconnected pattern: two random components side by side.
Graph RandomDisconnectedPattern(Rng* rng, uint32_t vertex_labels,
                                uint32_t edge_labels) {
  const Graph a = RandomMultiLabelGraph(rng, 2 + rng->Uniform(2), 1,
                                        vertex_labels, edge_labels);
  const Graph b = RandomMultiLabelGraph(rng, 2 + rng->Uniform(2), 0,
                                        vertex_labels, edge_labels);
  GraphBuilder builder;
  for (LabelId l : a.VertexLabels()) builder.AddVertex(l);
  for (LabelId l : b.VertexLabels()) builder.AddVertex(l);
  for (const Edge& e : a.Edges()) {
    auto r = builder.AddEdge(e.u, e.v, e.label);
    (void)r;
  }
  for (const Edge& e : b.Edges()) {
    auto r = builder.AddEdge(a.NumVertices() + e.u, a.NumVertices() + e.v,
                             e.label);
    (void)r;
  }
  return builder.Build();
}

std::vector<EdgeBitset> ReferenceEdgeSets(const Graph& pattern,
                                          const Graph& target) {
  std::vector<EdgeBitset> out;
  Vf2Options options;
  EnumerateEmbeddingsReference(pattern, target, options,
                               [&](const Embedding& emb) {
                                 out.push_back(EdgeBitset::FromIndices(
                                     target.NumEdges(), emb.edge_map));
                                 return true;
                               });
  return out;
}

void ExpectSameSets(const std::vector<EdgeBitset>& a,
                    const std::vector<EdgeBitset>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const EdgeBitset& e : a) {
    EXPECT_NE(std::find(b.begin(), b.end(), e), b.end());
  }
}

TEST(LabelIndexTest, BucketsMatchFullScan) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = RandomMultiLabelGraph(&rng, 3 + rng.Uniform(12),
                                          rng.Uniform(8), 4, 2);
    std::set<LabelId> labels(g.VertexLabels().begin(), g.VertexLabels().end());
    size_t covered = 0;
    for (LabelId l : labels) {
      const Span<VertexId> bucket = g.VerticesWithLabel(l);
      EXPECT_EQ(bucket.size(), g.LabelFrequency(l));
      covered += bucket.size();
      // Ascending ids, exactly the vertices a filtered 0..n scan visits.
      std::vector<VertexId> expected;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (g.VertexLabel(v) == l) expected.push_back(v);
      }
      ASSERT_EQ(bucket.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(bucket[i], expected[i]);
      }
    }
    EXPECT_EQ(covered, g.NumVertices());  // buckets partition the vertex set
    EXPECT_TRUE(g.VerticesWithLabel(12345).empty());
    EXPECT_EQ(g.DistinctVertexLabels().size(), labels.size());
  }
}

TEST(LabelIndexTest, EdgeSubsetGraphInheritsIndex) {
  Rng rng(72);
  const Graph base = RandomMultiLabelGraph(&rng, 8, 4, 3, 2);
  EdgeBitset present(base.NumEdges());
  for (EdgeId e = 0; e < base.NumEdges(); e += 2) present.Set(e);
  Graph world;
  BuildEdgeSubsetGraph(base, present, &world);
  for (LabelId l : base.DistinctVertexLabels()) {
    const Span<VertexId> a = base.VerticesWithLabel(l);
    const Span<VertexId> b = world.VerticesWithLabel(l);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

// The compiled matcher with a default plan must reproduce the reference
// engine's enumeration *order* exactly — mining's greedy disjoint counts
// and SIP bounds consume embeddings in order, so offline artifacts are
// bit-identical only if the sequence is.
TEST(Vf2EngineTest, DefaultPlanPreservesReferenceOrder) {
  Rng rng(201);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph pattern = RandomMultiLabelGraph(&rng, 3 + rng.Uniform(3),
                                                rng.Uniform(3), 3, 2);
    const Graph target = RandomMultiLabelGraph(&rng, 6 + rng.Uniform(4),
                                               3 + rng.Uniform(5), 3, 2);
    std::vector<Embedding> ref, fast;
    Vf2Options options;
    EnumerateEmbeddingsReference(pattern, target, options,
                                 [&](const Embedding& e) {
                                   ref.push_back(e);
                                   return true;
                                 });
    const MatchPlan plan = CompileMatchPlan(pattern);
    Vf2Scratch scratch;
    EnumerateEmbeddings(plan, target, options, &scratch,
                        [&](const Embedding& e) {
                          fast.push_back(e);  // copies the scratch record
                          return true;
                        });
    ASSERT_EQ(ref.size(), fast.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].vertex_map, fast[i].vertex_map) << "trial " << trial;
      EXPECT_EQ(ref[i].edge_map, fast[i].edge_map) << "trial " << trial;
    }
  }
}

struct EngineCaseParam {
  uint64_t seed;
  uint32_t pattern_n, pattern_extra;
  uint32_t target_n, target_extra;
  uint32_t vertex_labels, edge_labels;
  bool disconnected;
};

class Vf2EngineEquivalenceTest
    : public ::testing::TestWithParam<EngineCaseParam> {};

TEST_P(Vf2EngineEquivalenceTest, SetsAndCountsMatchReferenceAndBruteForce) {
  const EngineCaseParam p = GetParam();
  Rng rng(p.seed);
  const MatchPlanOptions default_opts;
  for (int trial = 0; trial < 10; ++trial) {
    const Graph pattern =
        p.disconnected
            ? RandomDisconnectedPattern(&rng, p.vertex_labels, p.edge_labels)
            : RandomMultiLabelGraph(&rng, p.pattern_n, p.pattern_extra,
                                    p.vertex_labels, p.edge_labels);
    const Graph target = RandomMultiLabelGraph(
        &rng, p.target_n, p.target_extra, p.vertex_labels, p.edge_labels);

    const auto expected_ref = ReferenceEdgeSets(pattern, target);
    const auto expected_brute = BruteForceEmbeddings(pattern, target);
    ExpectSameSets(expected_ref, expected_brute);

    // Default plan and rarest-label plan: identical sets, identical counts.
    Vf2Scratch scratch;
    for (const bool use_freq : {false, true}) {
      MatchPlanOptions opts;
      std::vector<uint32_t> freq;
      if (use_freq) {
        for (LabelId l : target.VertexLabels()) {
          if (l >= freq.size()) freq.resize(l + 1, 0);
          ++freq[l];
        }
        opts.label_freq = &freq;
      }
      const MatchPlan plan = CompileMatchPlan(pattern, opts);
      bool truncated = true;
      const auto actual =
          EmbeddingEdgeSets(plan, target, 0, &truncated, &scratch);
      EXPECT_FALSE(truncated);
      ExpectSameSets(actual, expected_ref);
      EXPECT_EQ(IsSubgraphIsomorphic(plan, target, &scratch),
                !expected_ref.empty());
    }
    EXPECT_EQ(IsSubgraphIsomorphic(pattern, target), !expected_ref.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Vf2EngineEquivalenceTest,
    ::testing::Values(
        EngineCaseParam{301, 3, 1, 6, 4, 1, 1, false},
        EngineCaseParam{302, 3, 1, 6, 4, 2, 2, false},
        EngineCaseParam{303, 4, 2, 7, 5, 3, 1, false},
        EngineCaseParam{304, 4, 2, 7, 5, 1, 3, false},
        EngineCaseParam{305, 5, 3, 8, 6, 2, 2, false},
        EngineCaseParam{306, 2, 0, 8, 8, 1, 1, false},
        EngineCaseParam{307, 0, 0, 7, 6, 2, 2, true},
        EngineCaseParam{308, 0, 0, 8, 8, 3, 2, true}));

TEST(Vf2EngineTest, RarestLabelSeedOrdering) {
  // Pattern: two components — an edge labeled (0,0) and a single vertex
  // labeled 1. Target frequencies make label 1 rare, so the single-vertex
  // component must seed first under the frequency rule; under the default
  // rule the higher-degree component comes first.
  const Graph pattern = MakeGraph({0, 0, 1}, {{0, 1, 0}});
  const std::vector<uint32_t> freq = {10, 1};  // label 0 common, 1 rare
  MatchPlanOptions opts;
  opts.label_freq = &freq;
  const MatchPlan with_freq = CompileMatchPlan(pattern, opts);
  EXPECT_EQ(with_freq.order[0], 2u);  // rare-label vertex seeds first
  const MatchPlan without = CompileMatchPlan(pattern);
  EXPECT_EQ(without.order[0], 0u);  // max-degree (ties broken by id)

  // Determinism: recompilation yields an identical plan.
  const MatchPlan again = CompileMatchPlan(pattern, opts);
  EXPECT_EQ(with_freq.order, again.order);
  EXPECT_EQ(with_freq.back_offsets, again.back_offsets);
}

TEST(Vf2EngineTest, TruncationReflectsGenuineCutoff) {
  // MakePath(2) in MakePath(10): exactly 9 embeddings.
  bool truncated = true;
  auto sets = EmbeddingEdgeSets(MakePath(2), MakePath(10), 9, &truncated);
  EXPECT_EQ(sets.size(), 9u);
  EXPECT_FALSE(truncated);  // exactly at the cap: nothing was cut off

  sets = EmbeddingEdgeSets(MakePath(2), MakePath(10), 8, &truncated);
  EXPECT_EQ(sets.size(), 8u);
  EXPECT_TRUE(truncated);

  sets = EmbeddingEdgeSets(MakePath(2), MakePath(10), 10, &truncated);
  EXPECT_EQ(sets.size(), 9u);
  EXPECT_FALSE(truncated);

  sets = EmbeddingEdgeSets(MakePath(2), MakePath(10), 0, &truncated);
  EXPECT_EQ(sets.size(), 9u);
  EXPECT_FALSE(truncated);
}

TEST(Vf2EngineTest, TruncationCountsDistinctEdgeSetsOnly) {
  // Path-3 in a triangle: 6 vertex maps but 3 distinct edge sets. A cap of
  // 3 must report all of them untruncated — automorphic duplicates do not
  // burn cap budget (dedup_by_edge_set interaction).
  bool truncated = true;
  const auto sets =
      EmbeddingEdgeSets(MakePath(3), MakeTriangle(0, 0, 0), 3, &truncated);
  EXPECT_EQ(sets.size(), 3u);
  EXPECT_FALSE(truncated);

  bool truncated2 = false;
  const auto sets2 =
      EmbeddingEdgeSets(MakePath(3), MakeTriangle(0, 0, 0), 2, &truncated2);
  EXPECT_EQ(sets2.size(), 2u);
  EXPECT_TRUE(truncated2);
}

TEST(Vf2EngineTest, SecondPassPerformsNoScratchGrowth) {
  Rng rng(401);
  std::vector<Graph> patterns, targets;
  for (int i = 0; i < 6; ++i) {
    patterns.push_back(RandomMultiLabelGraph(&rng, 4, 2, 2, 2));
    targets.push_back(RandomMultiLabelGraph(&rng, 10, 8, 2, 2));
  }
  std::vector<MatchPlan> plans;
  for (const Graph& p : patterns) plans.push_back(CompileMatchPlan(p));

  Vf2Scratch scratch;
  Vf2Options options;
  auto sweep = [&]() {
    size_t total = 0;
    for (size_t pi = 0; pi < patterns.size(); ++pi) {
      for (const Graph& t : targets) {
        total += EnumerateEmbeddings(plans[pi], t, options, &scratch,
                                     [](const Embedding&) { return true; });
      }
    }
    return total;
  };
  const size_t first = sweep();
  const size_t warmed = scratch.CapacityBytes();
  const size_t second = sweep();
  EXPECT_EQ(first, second);
  EXPECT_EQ(scratch.CapacityBytes(), warmed)
      << "steady-state enumeration must not grow the scratch";
}

// Uniform-probability model over `certain`: one ne set per edge, each with
// Pr(present) = 0.5 — distinct events of equal size then have *exactly*
// tied marginals, the adversarial case for order sensitivity.
ProbabilisticGraph UniformProbGraph(const Graph& certain) {
  std::vector<NeighborEdgeSet> ne_sets;
  for (EdgeId e = 0; e < certain.NumEdges(); ++e) {
    NeighborEdgeSet ne;
    ne.edges = {e};
    ne.table = JointProbTable::FromWeights({1.0, 1.0}).value();
    ne_sets.push_back(std::move(ne));
  }
  return ProbabilisticGraph::Create(certain, std::move(ne_sets)).value();
}

// Verifier-level pin: the events collected through the processor's shared
// (rarest-label-seeded) plans are exactly the events the plan-less path
// collects, and the sampled SSP estimate is *bit-identical* across plan
// variants — the sampler orders events by descending marginal with
// row-content tie-breaks, so its draw stream is a pure function of the
// event set and the model, never of enumeration order. The sweep includes
// a uniform-probability model where distinct equal-size events have
// exactly tied marginals (the case a first-seen tie-break would get wrong).
TEST(Vf2EngineTest, EventSetsAndDrawStreamsArePlanIndependent) {
  Rng rng(501);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph certain = RandomMultiLabelGraph(&rng, 9, 5, 2, 1);
    const bool uniform = trial % 2 == 0;
    const ProbabilisticGraph g =
        uniform ? UniformProbGraph(certain) : RandomProbGraph(certain, &rng);
    // Relaxed set: drop each edge of a small query once (plus the query).
    const Graph query = RandomMultiLabelGraph(&rng, 4, 1, 2, 1);
    std::vector<Graph> relaxed{query};
    for (EdgeId e = 0; e < query.NumEdges(); ++e) {
      std::vector<EdgeId> keep;
      for (EdgeId k = 0; k < query.NumEdges(); ++k) {
        if (k != e) keep.push_back(k);
      }
      relaxed.push_back(EdgeInducedSubgraph(query, keep));
    }

    VerifierOptions options;
    VerifierScratch plain, planned;
    const Status s1 = CollectSimilarityEvents(g, relaxed, options, &plain);
    std::vector<uint32_t> freq;
    AccumulateVertexLabelFrequencies(certain, &freq);
    MatchPlanOptions plan_options;
    plan_options.label_freq = &freq;
    std::vector<MatchPlan> plans;
    for (const Graph& rq : relaxed) {
      plans.push_back(CompileMatchPlan(rq, plan_options));
    }
    const Status s2 =
        CollectSimilarityEvents(g, relaxed, options, &planned, &plans);
    ASSERT_EQ(s1.ok(), s2.ok());
    if (!s1.ok()) continue;

    auto materialize = [&](const VerifierScratch& s) {
      std::vector<EdgeBitset> events(s.events.size());
      for (size_t i = 0; i < events.size(); ++i) {
        events[i].AssignWords(s.events.Row(i), g.NumEdges());
      }
      return events;
    };
    ExpectSameSets(materialize(plain), materialize(planned));

    // Same RNG state + either plan variant => bit-identical estimate.
    options.mc.min_samples = 300;
    options.mc.max_samples = 300;
    Rng r1(777), r2(777);
    const auto ssp_default =
        SampleSubgraphSimilarityProbability(g, relaxed, options, &r1, &plain);
    const auto ssp_planned = SampleSubgraphSimilarityProbability(
        g, relaxed, options, &r2, &planned, &plans);
    ASSERT_EQ(ssp_default.ok(), ssp_planned.ok());
    if (ssp_default.ok()) {
      EXPECT_EQ(*ssp_default, *ssp_planned)
          << "trial " << trial << (uniform ? " (uniform/tied)" : "");
    }
  }
}

}  // namespace
}  // namespace pgsim
