// Tests for structural pruning (Theorem 1): the count filter must never
// dismiss a true answer (soundness), and the exact check must compute SCq
// precisely.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/mcs.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/mining/feature_miner.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

struct Fixture {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> certain;
  FeatureSet features;
};

Fixture MakeFixture(uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = 15;
  options.avg_vertices = 9;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 4;
  options.seed = seed;
  Fixture fx;
  fx.db = GenerateDatabase(options).value();
  for (const auto& g : fx.db) fx.certain.push_back(g.certain());
  FeatureMinerOptions miner;
  miner.alpha = 0.0;
  miner.beta = 0.2;
  miner.gamma = -1.0;
  miner.max_vertices = 3;
  fx.features = MineFeatures(fx.certain, miner).value();
  return fx;
}

class StructuralFilterTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(StructuralFilterTest, ExactCheckEqualsSubgraphSimilarity) {
  const auto [seed, delta] = GetParam();
  Fixture fx = MakeFixture(seed);
  const StructuralFilter filter =
      StructuralFilter::Build(fx.certain, fx.features.features);

  Rng rng(seed * 3 + 1);
  for (int trial = 0; trial < 4; ++trial) {
    auto q = ExtractQuery(fx.certain[rng.Uniform(fx.certain.size())],
                          delta + 3, &rng);
    ASSERT_TRUE(q.ok());
    auto relaxed = GenerateRelaxedQueries(*q, delta);
    ASSERT_TRUE(relaxed.ok());
    StructuralFilterStats stats;
    const auto survivors = filter.Filter(*q, *relaxed, delta, &stats);
    // Exact semantics: survivors == {g : dis(q, gc) <= delta}.
    std::vector<uint32_t> expected;
    for (uint32_t gi = 0; gi < fx.certain.size(); ++gi) {
      if (IsSubgraphSimilar(*q, fx.certain[gi], delta)) {
        expected.push_back(gi);
      }
    }
    EXPECT_EQ(survivors, expected)
        << "seed=" << seed << " delta=" << delta << " trial=" << trial;
    EXPECT_GE(stats.count_filter_survivors, stats.exact_survivors);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StructuralFilterTest,
    ::testing::Combine(::testing::Values(1301ULL, 1303ULL),
                       ::testing::Values(0u, 1u, 2u)));

TEST(StructuralFilterSoundnessTest, CountFilterNeverDropsTrueAnswers) {
  Fixture fx = MakeFixture(1307);
  StructuralFilterOptions options;
  options.exact_check = false;  // count filter alone
  const StructuralFilter filter =
      StructuralFilter::Build(fx.certain, fx.features.features, options);
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    const uint32_t delta = trial % 3;
    auto q = ExtractQuery(fx.certain[rng.Uniform(fx.certain.size())],
                          delta + 3, &rng);
    ASSERT_TRUE(q.ok());
    auto relaxed = GenerateRelaxedQueries(*q, delta);
    ASSERT_TRUE(relaxed.ok());
    const auto survivors = filter.Filter(*q, *relaxed, delta);
    for (uint32_t gi = 0; gi < fx.certain.size(); ++gi) {
      if (IsSubgraphSimilar(*q, fx.certain[gi], delta)) {
        EXPECT_NE(std::find(survivors.begin(), survivors.end(), gi),
                  survivors.end())
            << "sound filter dropped true answer " << gi << " at delta "
            << delta;
      }
    }
  }
}

TEST(StructuralFilterTest, SelfQueryAlwaysSurvives) {
  Fixture fx = MakeFixture(1311);
  const StructuralFilter filter =
      StructuralFilter::Build(fx.certain, fx.features.features);
  Rng rng(23);
  // A query extracted from graph 0 must keep graph 0 as a survivor.
  auto q = ExtractQuery(fx.certain[0], 4, &rng);
  ASSERT_TRUE(q.ok());
  auto relaxed = GenerateRelaxedQueries(*q, 1);
  ASSERT_TRUE(relaxed.ok());
  const auto survivors = filter.Filter(*q, *relaxed, 1);
  EXPECT_NE(std::find(survivors.begin(), survivors.end(), 0u),
            survivors.end());
}

TEST(StructuralFilterTest, FilterReducesCandidates) {
  // A query with a label that exists nowhere prunes everything.
  Fixture fx = MakeFixture(1313);
  const StructuralFilter filter =
      StructuralFilter::Build(fx.certain, fx.features.features);
  GraphBuilder builder;
  const VertexId a = builder.AddVertex(77);
  const VertexId b = builder.AddVertex(77);
  const VertexId c = builder.AddVertex(77);
  ASSERT_TRUE(builder.AddEdge(a, b, 0).ok());
  ASSERT_TRUE(builder.AddEdge(b, c, 0).ok());
  const Graph q = builder.Build();
  auto relaxed = GenerateRelaxedQueries(q, 1);
  ASSERT_TRUE(relaxed.ok());
  const auto survivors = filter.Filter(q, *relaxed, 1);
  EXPECT_TRUE(survivors.empty());
}

}  // namespace
}  // namespace pgsim
