// Tests for pgsim/common: Status/Result, the deterministic PRNG, and the
// EdgeBitset set algebra.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "pgsim/common/bitset.h"
#include "pgsim/common/random.h"
#include "pgsim/common/span.h"
#include "pgsim/common/status.h"

namespace pgsim {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad delta");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, ServingCodesCarryFactoryAndName) {
  const Status deadline = Status::DeadlineExceeded("query ran past 5ms");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.message(), "query ran past 5ms");
  EXPECT_STREQ(StatusCodeName(deadline.code()), "DeadlineExceeded");

  const Status unavailable = Status::Unavailable("queue full");
  EXPECT_FALSE(unavailable.ok());
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.message(), "queue full");
  EXPECT_STREQ(StatusCodeName(unavailable.code()), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> Doubler(Result<int> in) {
  PGSIM_ASSIGN_OR_RETURN(const int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff_seed_differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal &= (va == vb);
    any_diff_seed_differs |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_differs);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, DiscreteMatchesWeights) {
  Rng rng(13);
  std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, BetaMeanApproximatesAlphaOverSum) {
  Rng rng(17);
  const double a = 0.383 * 6, b = (1 - 0.383) * 6;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Beta(a, b);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.383, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  // The child stream should differ from the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (a.Next() != child.Next());
  EXPECT_TRUE(differs);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(EdgeBitsetTest, SetResetTestCount) {
  EdgeBitset b(130);
  EXPECT_TRUE(b.Empty());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(EdgeBitsetTest, SetAlgebra) {
  EdgeBitset a = EdgeBitset::FromIndices(100, {1, 5, 70});
  EdgeBitset b = EdgeBitset::FromIndices(100, {5, 70, 99});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.DisjointWith(b));
  EXPECT_FALSE(a.ContainsAll(b));

  EdgeBitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 4u);
  EXPECT_TRUE(u.ContainsAll(a));
  EXPECT_TRUE(u.ContainsAll(b));

  EdgeBitset i = a;
  i &= b;
  EXPECT_EQ(i.ToVector(), (std::vector<uint32_t>{5, 70}));

  EdgeBitset d = a;
  d.Subtract(b);
  EXPECT_EQ(d.ToVector(), (std::vector<uint32_t>{1}));
}

TEST(EdgeBitsetTest, DisjointSets) {
  EdgeBitset a = EdgeBitset::FromIndices(64, {0, 1});
  EdgeBitset b = EdgeBitset::FromIndices(64, {2, 3});
  EXPECT_TRUE(a.DisjointWith(b));
  EXPECT_FALSE(a.Intersects(b));
}

TEST(EdgeBitsetTest, ToVectorRoundTrip) {
  const std::vector<uint32_t> indices{0, 3, 63, 64, 65, 127};
  EdgeBitset b = EdgeBitset::FromIndices(128, indices);
  EXPECT_EQ(b.ToVector(), indices);
}

TEST(EdgeBitsetTest, EqualityAndHash) {
  EdgeBitset a = EdgeBitset::FromIndices(80, {1, 2, 3});
  EdgeBitset b = EdgeBitset::FromIndices(80, {1, 2, 3});
  EdgeBitset c = EdgeBitset::FromIndices(80, {1, 2, 4});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
}

TEST(EdgeBitsetTest, ClearEmptiesAllWords) {
  EdgeBitset a = EdgeBitset::FromIndices(200, {0, 100, 199});
  a.Clear();
  EXPECT_TRUE(a.Empty());
  EXPECT_EQ(a.Count(), 0u);
}

TEST(SpanTest, EmptyByDefault) {
  Span<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.begin(), s.end());
}

TEST(SpanTest, ViewsContiguousStorage) {
  const std::vector<int> data = {3, 1, 4, 1, 5, 9};
  const Span<int> s(data.data(), data.size());
  EXPECT_EQ(s.size(), data.size());
  EXPECT_EQ(s.front(), 3);
  EXPECT_EQ(s.back(), 9);
  EXPECT_EQ(s[2], 4);
  size_t i = 0;
  for (int x : s) EXPECT_EQ(x, data[i++]);
  EXPECT_EQ(i, data.size());
}

TEST(SpanTest, SubspanClampsToLength) {
  const std::vector<int> data = {0, 1, 2, 3, 4};
  const Span<int> s(data.data(), data.size());
  const Span<int> mid = s.subspan(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.front(), 1);
  EXPECT_EQ(mid.back(), 3);
  const Span<int> tail = s.subspan(3);
  EXPECT_EQ(tail.size(), 2u);
  const Span<int> over = s.subspan(4, 100);
  EXPECT_EQ(over.size(), 1u);
  const Span<int> past = s.subspan(99);  // offset beyond the end clamps
  EXPECT_TRUE(past.empty());
}

}  // namespace
}  // namespace pgsim
