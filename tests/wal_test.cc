// Tests for the write-ahead mutation log: append/reopen round trips with
// bit-identical graph payloads, torn-tail truncation at every byte, CRC
// rejection of corrupt records, Reset, and short-write fault injection.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pgsim/common/failpoint.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/io.h"
#include "pgsim/storage/wal.h"

namespace pgsim {
namespace {

std::vector<ProbabilisticGraph> SmallDatabase(uint64_t seed, size_t n) {
  SyntheticOptions options;
  options.num_graphs = n;
  options.avg_vertices = 7;
  options.num_vertex_labels = 4;
  options.seed = seed;
  return GenerateDatabase(options).value();
}

std::string TempWal(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string GraphBytes(const ProbabilisticGraph& g) {
  std::ostringstream os;
  WriteProbabilisticGraph(os, g);
  return os.str();
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointClearAll(); }
  void TearDown() override { FailpointClearAll(); }
};

TEST_F(WalTest, AppendReopenRoundTrip) {
  const std::string path = TempWal("pgsim_wal_roundtrip.log");
  std::remove(path.c_str());
  const auto db = SmallDatabase(8101, 2);

  {
    std::vector<WalRecord> records;
    auto wal = WriteAheadLog::Open(path, &records);
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE(records.empty());
    ASSERT_TRUE((*wal)->AppendAddGraph(0, 42, db[0]).ok());
    ASSERT_TRUE((*wal)->AppendAddGraph(1, 43, db[1]).ok());
    ASSERT_TRUE((*wal)->AppendRemoveGraph(2, 7).ok());
    ASSERT_TRUE((*wal)->AppendCompact(3).ok());
  }

  std::vector<WalRecord> records;
  WalRecoveryInfo info;
  auto wal = WriteAheadLog::Open(path, &records, &info);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(info.tail_truncated);
  EXPECT_EQ(info.records_recovered, 4u);
  ASSERT_EQ(records.size(), 4u);

  EXPECT_EQ(records[0].op, WalRecord::Op::kAddGraph);
  EXPECT_EQ(records[0].epoch_before, 0u);
  EXPECT_EQ(records[0].seed, 42u);
  // The replayed graph is bit-identical to what was logged.
  EXPECT_EQ(GraphBytes(records[0].graph), GraphBytes(db[0]));
  EXPECT_EQ(GraphBytes(records[1].graph), GraphBytes(db[1]));

  EXPECT_EQ(records[2].op, WalRecord::Op::kRemoveGraph);
  EXPECT_EQ(records[2].epoch_before, 2u);
  EXPECT_EQ(records[2].graph_id, 7u);

  EXPECT_EQ(records[3].op, WalRecord::Op::kCompact);
  EXPECT_EQ(records[3].epoch_before, 3u);
  std::remove(path.c_str());
}

TEST_F(WalTest, TornTailTruncatedAtEveryByte) {
  const std::string path = TempWal("pgsim_wal_torn.log");
  std::remove(path.c_str());
  const auto db = SmallDatabase(8111, 1);
  uint64_t two_records = 0;
  {
    std::vector<WalRecord> records;
    auto wal = WriteAheadLog::Open(path, &records);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendRemoveGraph(0, 3).ok());
    two_records = (*wal)->SizeBytes();
    ASSERT_TRUE((*wal)->AppendAddGraph(1, 9, db[0]).ok());
  }
  const std::string full = Slurp(path);
  ASSERT_GT(full.size(), two_records);

  // Cut the file after every byte of the second record: recovery must keep
  // exactly the first record and truncate the torn tail in place.
  for (size_t cut = two_records; cut < full.size(); ++cut) {
    Spit(path, full.substr(0, cut));
    std::vector<WalRecord> records;
    WalRecoveryInfo info;
    auto wal = WriteAheadLog::Open(path, &records, &info);
    ASSERT_TRUE(wal.ok()) << "cut at " << cut;
    ASSERT_EQ(records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(records[0].graph_id, 3u);
    EXPECT_EQ(info.tail_truncated, cut != two_records) << "cut at " << cut;
    EXPECT_EQ((*wal)->SizeBytes(), two_records) << "cut at " << cut;
    // The log keeps working after truncation.
    ASSERT_TRUE((*wal)->AppendCompact(1).ok());
  }
  std::remove(path.c_str());
}

TEST_F(WalTest, CorruptRecordDropsItAndEverythingAfter) {
  const std::string path = TempWal("pgsim_wal_flip.log");
  std::remove(path.c_str());
  uint64_t one_record = 0;
  {
    std::vector<WalRecord> records;
    auto wal = WriteAheadLog::Open(path, &records);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendRemoveGraph(0, 1).ok());
    one_record = (*wal)->SizeBytes();
    ASSERT_TRUE((*wal)->AppendRemoveGraph(1, 2).ok());
    ASSERT_TRUE((*wal)->AppendRemoveGraph(2, 3).ok());
  }
  std::string bytes = Slurp(path);
  // Flip one payload byte inside the second record.
  bytes[one_record + 9] = static_cast<char>(bytes[one_record + 9] ^ 0x40);
  Spit(path, bytes);

  std::vector<WalRecord> records;
  WalRecoveryInfo info;
  auto wal = WriteAheadLog::Open(path, &records, &info);
  ASSERT_TRUE(wal.ok());
  // Nothing after a bad record is trusted: record 3 is gone too.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].graph_id, 1u);
  EXPECT_TRUE(info.tail_truncated);
  EXPECT_EQ((*wal)->SizeBytes(), one_record);
  std::remove(path.c_str());
}

TEST_F(WalTest, BadHeaderIsDataLoss) {
  const std::string path = TempWal("pgsim_wal_header.log");
  Spit(path, "NOTAWAL!");
  std::vector<WalRecord> records;
  auto wal = WriteAheadLog::Open(path, &records);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST_F(WalTest, ResetTruncatesToHeader) {
  const std::string path = TempWal("pgsim_wal_reset.log");
  std::remove(path.c_str());
  std::vector<WalRecord> records;
  auto wal = WriteAheadLog::Open(path, &records);
  ASSERT_TRUE(wal.ok());
  const uint64_t header = (*wal)->SizeBytes();
  ASSERT_TRUE((*wal)->AppendRemoveGraph(0, 1).ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->SizeBytes(), header);
  // Records appended after a reset replay alone.
  ASSERT_TRUE((*wal)->AppendRemoveGraph(5, 9).ok());
  std::vector<WalRecord> replay;
  auto reopened = WriteAheadLog::Open(path, &replay);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].epoch_before, 5u);
  std::remove(path.c_str());
}

TEST_F(WalTest, ShortWriteFaultLeavesRecoverableLog) {
  const std::string path = TempWal("pgsim_wal_short.log");
  std::remove(path.c_str());
  {
    std::vector<WalRecord> records;
    auto wal = WriteAheadLog::Open(path, &records);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendRemoveGraph(0, 1).ok());
    // The next append writes only 5 bytes of its frame and reports DataLoss.
    FailpointSpec spec;
    spec.mode = FailpointMode::kShortWrite;
    spec.keep_bytes = 5;
    FailpointSet("wal.append.write", spec);
    EXPECT_EQ((*wal)->AppendRemoveGraph(1, 2).code(), StatusCode::kDataLoss);
  }
  // Recovery truncates the torn frame and keeps the intact record.
  std::vector<WalRecord> records;
  WalRecoveryInfo info;
  auto wal = WriteAheadLog::Open(path, &records, &info);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].graph_id, 1u);
  EXPECT_TRUE(info.tail_truncated);
  std::remove(path.c_str());
}

TEST_F(WalTest, InjectedErrorPropagates) {
  const std::string path = TempWal("pgsim_wal_err.log");
  std::remove(path.c_str());
  std::vector<WalRecord> records;
  auto wal = WriteAheadLog::Open(path, &records);
  ASSERT_TRUE(wal.ok());
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  FailpointSet("wal.append", spec);
  EXPECT_FALSE((*wal)->AppendCompact(0).ok());
  // One-shot: the next append succeeds and the log holds exactly it.
  ASSERT_TRUE((*wal)->AppendCompact(0).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pgsim
