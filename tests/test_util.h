// Shared helpers for the pgsim test suite: tiny-graph builders, independent
// brute-force oracles (used to cross-check VF2 / MCS / inference), and small
// random-instance generators.

#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/random.h"
#include "pgsim/graph/graph.h"
#include "pgsim/prob/jpt.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim::testing {

/// Builds a graph from vertex labels and edge triples (u, v, label).
inline Graph MakeGraph(const std::vector<LabelId>& vertex_labels,
                       const std::vector<std::tuple<VertexId, VertexId,
                                                    LabelId>>& edges) {
  GraphBuilder builder;
  for (LabelId l : vertex_labels) builder.AddVertex(l);
  for (const auto& [u, v, l] : edges) {
    auto r = builder.AddEdge(u, v, l);
    (void)r;
  }
  return builder.Build();
}

/// A path graph with `n` vertices, all labels `label`, edge labels 0.
inline Graph MakePath(uint32_t n, LabelId label = 0) {
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) builder.AddVertex(label);
  for (uint32_t i = 0; i + 1 < n; ++i) {
    auto r = builder.AddEdge(i, i + 1, 0);
    (void)r;
  }
  return builder.Build();
}

/// A triangle with the given vertex labels.
inline Graph MakeTriangle(LabelId a, LabelId b, LabelId c) {
  return MakeGraph({a, b, c}, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
}

/// Independent brute-force embedding counter: enumerates all injective
/// vertex maps (no VF2 machinery shared), returns distinct target-edge sets.
inline std::vector<EdgeBitset> BruteForceEmbeddings(const Graph& pattern,
                                                    const Graph& target) {
  std::vector<EdgeBitset> found;
  if (pattern.NumVertices() > target.NumVertices()) return found;
  std::vector<VertexId> map(pattern.NumVertices(), kInvalidVertex);
  std::vector<char> used(target.NumVertices(), 0);

  auto valid_full = [&]() -> bool {
    for (EdgeId e = 0; e < pattern.NumEdges(); ++e) {
      const Edge& pe = pattern.GetEdge(e);
      const VertexId tu = map[pe.u], tv = map[pe.v];
      const auto te = target.FindEdge(std::min(tu, tv), std::max(tu, tv));
      if (!te.has_value() || target.EdgeLabel(*te) != pe.label) return false;
    }
    return true;
  };
  auto record = [&]() {
    EdgeBitset set(target.NumEdges());
    for (EdgeId e = 0; e < pattern.NumEdges(); ++e) {
      const Edge& pe = pattern.GetEdge(e);
      const VertexId tu = map[pe.u], tv = map[pe.v];
      set.Set(*target.FindEdge(std::min(tu, tv), std::max(tu, tv)));
    }
    for (const EdgeBitset& s : found) {
      if (s == set) return;
    }
    found.push_back(set);
  };

  auto recurse = [&](auto&& self, VertexId pv) -> void {
    if (pv == pattern.NumVertices()) {
      if (valid_full()) record();
      return;
    }
    for (VertexId tv = 0; tv < target.NumVertices(); ++tv) {
      if (used[tv] || target.VertexLabel(tv) != pattern.VertexLabel(pv)) {
        continue;
      }
      map[pv] = tv;
      used[tv] = 1;
      self(self, pv + 1);
      used[tv] = 0;
      map[pv] = kInvalidVertex;
    }
  };
  recurse(recurse, 0);
  return found;
}

/// Random small labeled graph: `n` vertices, ~`extra` edges beyond a
/// spanning tree, labels < num_labels.
inline Graph RandomGraph(Rng* rng, uint32_t n, uint32_t extra,
                         uint32_t num_labels) {
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddVertex(static_cast<LabelId>(rng->Uniform(num_labels)));
  }
  for (uint32_t v = 1; v < n; ++v) {
    auto r = builder.AddEdge(static_cast<VertexId>(rng->Uniform(v)), v, 0);
    (void)r;
  }
  for (uint32_t i = 0; i < extra; ++i) {
    const VertexId a = static_cast<VertexId>(rng->Uniform(n));
    const VertexId b = static_cast<VertexId>(rng->Uniform(n));
    if (a == b) continue;
    auto r = builder.AddEdge(a, b, 0);
    (void)r;
  }
  return builder.Build();
}

/// Random partition-model probabilistic graph over `certain`: vertex-anchored
/// ne groups of size <= max_ne, random (correlated) JPTs.
inline ProbabilisticGraph RandomProbGraph(const Graph& certain, Rng* rng,
                                          uint32_t max_ne = 3) {
  const uint32_t m = certain.NumEdges();
  std::vector<char> assigned(m, 0);
  std::vector<NeighborEdgeSet> ne_sets;
  for (VertexId v = 0; v < certain.NumVertices(); ++v) {
    std::vector<EdgeId> pool;
    for (const AdjEntry& adj : certain.Neighbors(v)) {
      if (!assigned[adj.edge]) pool.push_back(adj.edge);
    }
    size_t i = 0;
    while (i < pool.size()) {
      const size_t take = std::min<size_t>(1 + rng->Uniform(max_ne),
                                           pool.size() - i);
      NeighborEdgeSet ne;
      ne.edges.assign(pool.begin() + i, pool.begin() + i + take);
      for (EdgeId e : ne.edges) assigned[e] = 1;
      std::vector<double> weights(1ULL << take);
      for (auto& w : weights) w = 0.05 + rng->UniformDouble();
      ne.table = JointProbTable::FromWeights(weights).value();
      ne_sets.push_back(std::move(ne));
      i += take;
    }
  }
  return ProbabilisticGraph::Create(certain, std::move(ne_sets)).value();
}

}  // namespace pgsim::testing
