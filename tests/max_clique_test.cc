// Tests for the max-weight-clique solver against subset brute force.

#include <gtest/gtest.h>

#include "pgsim/bounds/max_clique.h"
#include "pgsim/common/random.h"

namespace pgsim {
namespace {

// Brute force over all vertex subsets (n <= 20).
double BruteForceMaxClique(const std::vector<std::vector<char>>& adj,
                           const std::vector<double>& weights) {
  const size_t n = weights.size();
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1U << n); ++mask) {
    bool clique = true;
    double weight = 0.0;
    for (size_t i = 0; i < n && clique; ++i) {
      if (!((mask >> i) & 1U)) continue;
      weight += weights[i];
      for (size_t j = i + 1; j < n; ++j) {
        if (((mask >> j) & 1U) && !adj[i][j]) {
          clique = false;
          break;
        }
      }
    }
    if (clique) best = std::max(best, weight);
  }
  return best;
}

bool IsClique(const std::vector<std::vector<char>>& adj,
              const std::vector<uint32_t>& members) {
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      if (!adj[members[i]][members[j]]) return false;
    }
  }
  return true;
}

TEST(MaxCliqueTest, EmptyGraph) {
  const auto result = MaxWeightClique({}, {});
  EXPECT_EQ(result.weight, 0.0);
  EXPECT_TRUE(result.members.empty());
}

TEST(MaxCliqueTest, SingleNode) {
  const auto result = MaxWeightClique({{0}}, {2.5});
  EXPECT_DOUBLE_EQ(result.weight, 2.5);
  EXPECT_EQ(result.members.size(), 1u);
}

TEST(MaxCliqueTest, TrianglePlusPendant) {
  // Vertices 0-1-2 form a triangle; 3 attaches only to 0.
  std::vector<std::vector<char>> adj(4, std::vector<char>(4, 0));
  auto link = [&](int a, int b) { adj[a][b] = adj[b][a] = 1; };
  link(0, 1);
  link(1, 2);
  link(0, 2);
  link(0, 3);
  // Heavy pendant pair beats the triangle.
  const auto r1 = MaxWeightClique(adj, {1.0, 1.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(r1.weight, 4.0);  // {0, 3}
  // Light pendant: triangle wins.
  const auto r2 = MaxWeightClique(adj, {1.0, 1.0, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(r2.weight, 3.0);  // {0, 1, 2}
}

TEST(MaxCliqueTest, GreedyReturnsValidClique) {
  Rng rng(501);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.Uniform(10);
    std::vector<std::vector<char>> adj(n, std::vector<char>(n, 0));
    std::vector<double> weights(n);
    for (size_t i = 0; i < n; ++i) {
      weights[i] = rng.UniformDouble();
      for (size_t j = i + 1; j < n; ++j) {
        adj[i][j] = adj[j][i] = rng.Bernoulli(0.5);
      }
    }
    const auto result = GreedyWeightClique(adj, weights);
    EXPECT_TRUE(IsClique(adj, result.members));
    EXPECT_FALSE(result.exact);
  }
}

class MaxCliqueRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(MaxCliqueRandomTest, ExactMatchesBruteForce) {
  const auto [seed, density] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t n = 4 + rng.Uniform(9);
    std::vector<std::vector<char>> adj(n, std::vector<char>(n, 0));
    std::vector<double> weights(n);
    for (size_t i = 0; i < n; ++i) {
      weights[i] = 0.1 + rng.UniformDouble();
      for (size_t j = i + 1; j < n; ++j) {
        adj[i][j] = adj[j][i] = rng.Bernoulli(density);
      }
    }
    const auto result = MaxWeightClique(adj, weights);
    EXPECT_TRUE(result.exact);
    EXPECT_TRUE(IsClique(adj, result.members));
    EXPECT_NEAR(result.weight, BruteForceMaxClique(adj, weights), 1e-9)
        << "seed=" << seed << " density=" << density << " trial=" << trial;
    // Reported weight matches reported members.
    double member_weight = 0.0;
    for (uint32_t v : result.members) member_weight += weights[v];
    EXPECT_NEAR(member_weight, result.weight, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaxCliqueRandomTest,
    ::testing::Combine(::testing::Values(511ULL, 512ULL, 513ULL),
                       ::testing::Values(0.2, 0.5, 0.8)));

TEST(MaxCliqueTest, LargeInputFallsBackToGreedy) {
  const size_t n = 100;
  std::vector<std::vector<char>> adj(n, std::vector<char>(n, 1));
  std::vector<double> weights(n, 1.0);
  MaxCliqueOptions options;
  options.exact_node_limit = 50;
  const auto result = MaxWeightClique(adj, weights, options);
  EXPECT_FALSE(result.exact);
  // Complete graph: greedy still finds everything.
  EXPECT_DOUBLE_EQ(result.weight, 100.0);
}

}  // namespace
}  // namespace pgsim
