// Tests for the Probabilistic Matrix Index: build invariants, the <0>
// convention for absent features, bound sandwiching against exact SIP, and
// save/load round-tripping.

#include <cstdio>

#include <gtest/gtest.h>

#include "pgsim/bounds/sip_bounds.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/pmi.h"

namespace pgsim {
namespace {

std::vector<ProbabilisticGraph> SmallDatabase(uint64_t seed,
                                              size_t num_graphs = 10) {
  SyntheticOptions options;
  options.num_graphs = num_graphs;
  options.avg_vertices = 9;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 4;
  options.seed = seed;
  return GenerateDatabase(options).value();
}

PmiBuildOptions FastBuild() {
  PmiBuildOptions options;
  options.miner.alpha = 0.0;
  options.miner.beta = 0.2;
  options.miner.gamma = -1.0;
  options.miner.max_vertices = 3;
  options.sip.mc.max_samples = 3000;
  options.sip.mc.min_samples = 1500;
  return options;
}

TEST(PmiTest, BuildPopulatesEntriesExactlyForSupport) {
  const auto db = SmallDatabase(1201);
  auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild());
  ASSERT_TRUE(pmi.ok());
  ASSERT_GT(pmi->features().size(), 0u);
  EXPECT_EQ(pmi->num_graphs(), db.size());
  // Entry exists iff the feature is subgraph isomorphic to gc (<0> rule).
  for (uint32_t fi = 0; fi < pmi->features().size(); ++fi) {
    const Feature& f = pmi->features()[fi];
    for (uint32_t gi = 0; gi < db.size(); ++gi) {
      const bool present =
          IsSubgraphIsomorphic(f.graph, db[gi].certain());
      EXPECT_EQ(pmi->Contains(gi, fi), present)
          << "feature " << fi << " graph " << gi;
    }
  }
}

TEST(PmiTest, EntriesAreOrderedBounds) {
  const auto db = SmallDatabase(1203);
  auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild());
  ASSERT_TRUE(pmi.ok());
  for (uint32_t gi = 0; gi < db.size(); ++gi) {
    uint32_t prev_feature = 0;
    bool first = true;
    for (const PmiEntry& e : pmi->EntriesFor(gi)) {
      if (!first) EXPECT_GT(e.feature_id, prev_feature);
      prev_feature = e.feature_id;
      first = false;
      EXPECT_GE(e.lower_opt, 0.0f);
      EXPECT_LE(e.lower_opt, e.upper_opt + 1e-6f);
      EXPECT_LE(e.lower_simple, e.upper_simple + 1e-6f);
      EXPECT_LE(e.upper_opt, 1.0f);
    }
  }
}

TEST(PmiTest, BoundsSandwichExactSipWithinMcTolerance) {
  const auto db = SmallDatabase(1207, 6);
  PmiBuildOptions options = FastBuild();
  options.sip.mc.max_samples = 20000;
  options.sip.mc.min_samples = 20000;
  auto pmi = ProbabilisticMatrixIndex::Build(db, options);
  ASSERT_TRUE(pmi.ok());
  const double slack = 0.08;
  size_t checked = 0;
  for (uint32_t gi = 0; gi < db.size() && checked < 40; ++gi) {
    for (const PmiEntry& e : pmi->EntriesFor(gi)) {
      auto exact = ExactSubgraphIsomorphismProbability(
          db[gi], pmi->features()[e.feature_id].graph, 512);
      if (!exact.ok()) continue;  // embedding cap: skip
      EXPECT_LE(e.lower_opt, *exact + slack)
          << "graph " << gi << " feature " << e.feature_id;
      EXPECT_GE(e.upper_opt, *exact - slack)
          << "graph " << gi << " feature " << e.feature_id;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(PmiTest, StatsAreFilled) {
  const auto db = SmallDatabase(1213);
  auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild());
  ASSERT_TRUE(pmi.ok());
  const PmiStats& stats = pmi->stats();
  EXPECT_EQ(stats.num_features, pmi->features().size());
  EXPECT_GT(stats.num_entries, 0u);
  EXPECT_GT(stats.size_bytes, 0u);
  EXPECT_GE(stats.total_seconds, stats.bounds_seconds);
}

TEST(PmiTest, SaveLoadRoundTrip) {
  const auto db = SmallDatabase(1217, 6);
  auto pmi = ProbabilisticMatrixIndex::Build(db, FastBuild());
  ASSERT_TRUE(pmi.ok());
  const std::string path = ::testing::TempDir() + "/pgsim_pmi_test.bin";
  ASSERT_TRUE(pmi->Save(path).ok());
  auto loaded = ProbabilisticMatrixIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->features().size(), pmi->features().size());
  EXPECT_EQ(loaded->num_graphs(), pmi->num_graphs());
  for (uint32_t gi = 0; gi < pmi->num_graphs(); ++gi) {
    const auto& a = pmi->EntriesFor(gi);
    const auto& b = loaded->EntriesFor(gi);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].feature_id, b[k].feature_id);
      EXPECT_FLOAT_EQ(a[k].lower_opt, b[k].lower_opt);
      EXPECT_FLOAT_EQ(a[k].upper_opt, b[k].upper_opt);
      EXPECT_FLOAT_EQ(a[k].lower_simple, b[k].lower_simple);
      EXPECT_FLOAT_EQ(a[k].upper_simple, b[k].upper_simple);
    }
  }
  for (uint32_t fi = 0; fi < pmi->features().size(); ++fi) {
    EXPECT_TRUE(AreIsomorphic(pmi->features()[fi].graph,
                              loaded->features()[fi].graph));
    EXPECT_EQ(pmi->features()[fi].support, loaded->features()[fi].support);
  }
  std::remove(path.c_str());
}

TEST(PmiTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/pgsim_pmi_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("not a pmi file", f);
  fclose(f);
  auto loaded = ProbabilisticMatrixIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(PmiTest, LoadMissingFileFails) {
  auto loaded = ProbabilisticMatrixIndex::Load("/nonexistent/pmi.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pgsim
