// Tests for the SIP bound machinery (Section 4.1): the estimated
// LowerB/UpperB must sandwich the exact subgraph isomorphism probability
// (within Monte-Carlo tolerance), the OPT bounds must dominate the greedy
// ones, and edge cases (absent feature, truncation) must behave.

#include <gtest/gtest.h>

#include "pgsim/bounds/sip_bounds.h"
#include "pgsim/graph/vf2.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

SipBoundOptions TestOptions() {
  SipBoundOptions options;
  options.mc.xi = 0.05;
  options.mc.tau = 0.03;
  options.mc.max_samples = 60'000;
  return options;
}

TEST(SipBoundsTest, AbsentFeatureGivesExactZero) {
  Rng rng(701);
  const Graph g = MakePath(4);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  const Graph feature = MakeGraph({9, 9}, {{0, 1, 0}});  // label 9 nowhere
  const SipBounds b = ComputeSipBounds(pg, feature, TestOptions(), &rng);
  EXPECT_EQ(b.num_embeddings, 0u);
  EXPECT_DOUBLE_EQ(b.lower_opt, 0.0);
  EXPECT_DOUBLE_EQ(b.upper_opt, 0.0);
}

TEST(SipBoundsTest, BoundsAreOrdered) {
  Rng rng(703);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 2);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    const Graph feature = MakePath(2, g.VertexLabel(0));
    const SipBounds b = ComputeSipBounds(pg, feature, TestOptions(), &rng);
    EXPECT_LE(b.lower_opt, b.upper_opt + 1e-12);
    EXPECT_LE(b.lower_simple, b.upper_simple + 1e-12);
    EXPECT_GE(b.lower_opt, 0.0);
    EXPECT_LE(b.upper_opt, 1.0);
  }
}

class SipSandwichTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SipSandwichTest, BoundsSandwichExactSip) {
  Rng rng(GetParam());
  // Monte-Carlo slack: the Algorithm 3 estimates carry tau-level noise that
  // propagates through the clique products.
  const double slack = 0.06;
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = RandomGraph(&rng, 6, 3, 2);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    // Feature: a 2-edge path extracted from g itself so embeddings exist.
    Graph feature;
    {
      const VertexId center = 0;
      if (g.Degree(center) < 2) continue;
      const auto& adj = g.Neighbors(center);
      GraphBuilder builder;
      const VertexId c = builder.AddVertex(g.VertexLabel(center));
      const VertexId a = builder.AddVertex(g.VertexLabel(adj[0].neighbor));
      const VertexId b2 = builder.AddVertex(g.VertexLabel(adj[1].neighbor));
      auto r1 = builder.AddEdge(c, a, g.EdgeLabel(adj[0].edge));
      auto r2 = builder.AddEdge(c, b2, g.EdgeLabel(adj[1].edge));
      (void)r1;
      (void)r2;
      feature = builder.Build();
    }
    auto exact = ExactSubgraphIsomorphismProbability(pg, feature);
    ASSERT_TRUE(exact.ok());
    const SipBounds b = ComputeSipBounds(pg, feature, TestOptions(), &rng);
    EXPECT_LE(b.lower_opt, *exact + slack)
        << "trial=" << trial << " exact=" << *exact;
    EXPECT_GE(b.upper_opt, *exact - slack)
        << "trial=" << trial << " exact=" << *exact;
    EXPECT_LE(b.lower_simple, *exact + slack);
    EXPECT_GE(b.upper_simple, *exact - slack);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SipSandwichTest,
                         ::testing::Values(711ULL, 713ULL, 719ULL, 723ULL));

TEST(SipBoundsTest, OptLowerBoundDominatesGreedy) {
  // The max-weight clique can only improve on the greedy clique, so
  // lower_opt >= lower_simple (both built from the same estimates).
  Rng rng(727);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = RandomGraph(&rng, 7, 4, 1);
    const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
    const Graph feature = MakePath(3, 0);
    if (!IsSubgraphIsomorphic(feature, g)) continue;
    const SipBounds b = ComputeSipBounds(pg, feature, TestOptions(), &rng);
    EXPECT_GE(b.lower_opt, b.lower_simple - 1e-9);
    EXPECT_LE(b.upper_opt, b.upper_simple + 1e-9);
  }
}

TEST(SipBoundsTest, TruncatedEmbeddingsFallBackToUpperOne) {
  Rng rng(733);
  const Graph g = RandomGraph(&rng, 8, 6, 1);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  const Graph feature = MakePath(2, g.VertexLabel(0));
  SipBoundOptions options = TestOptions();
  options.max_cut_embeddings = 1;  // force truncation
  options.mc.max_samples = 2000;
  const SipBounds b = ComputeSipBounds(pg, feature, options, &rng);
  if (b.embeddings_truncated) {
    EXPECT_DOUBLE_EQ(b.upper_opt, 1.0);
    EXPECT_TRUE(b.cuts_truncated);
  }
}

TEST(SipBoundsTest, BatchMatchesSingleFeaturePath) {
  Rng rng(739);
  const Graph g = RandomGraph(&rng, 6, 3, 2);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  const Graph f1 = MakePath(2, g.VertexLabel(0));
  const Graph f2 = MakePath(3, g.VertexLabel(0));
  Rng rng_batch(99), rng_single(99);
  const auto batch =
      ComputeSipBoundsBatch(pg, {&f1, &f2}, TestOptions(), &rng_batch);
  ASSERT_EQ(batch.size(), 2u);
  // Same structural quantities as the single-feature path (the Monte-Carlo
  // estimates share worlds in the batch, so compare structure, not values).
  const SipBounds single = ComputeSipBounds(pg, f1, TestOptions(), &rng_single);
  EXPECT_EQ(batch[0].num_embeddings, single.num_embeddings);
  EXPECT_EQ(batch[0].num_cuts, single.num_cuts);
}

TEST(ExactSipTest, MatchesHandComputedIndependentCase) {
  // Path a-b with one uncertain edge of probability p: a single-edge feature
  // with the same labels has SIP = p.
  GraphBuilder builder;
  const VertexId a = builder.AddVertex(1);
  const VertexId b = builder.AddVertex(2);
  auto e = builder.AddEdge(a, b, 0);
  ASSERT_TRUE(e.ok());
  const Graph certain = builder.Build();
  NeighborEdgeSet ne;
  ne.edges = {0};
  ne.table = JointProbTable::Independent({0.37}).value();
  auto pg = ProbabilisticGraph::Create(certain, {ne});
  ASSERT_TRUE(pg.ok());
  const Graph feature = MakeGraph({1, 2}, {{0, 1, 0}});
  auto sip = ExactSubgraphIsomorphismProbability(*pg, feature);
  ASSERT_TRUE(sip.ok());
  EXPECT_NEAR(*sip, 0.37, 1e-12);
}

}  // namespace
}  // namespace pgsim
