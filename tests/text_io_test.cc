// Tests for the text dataset format: round-tripping, hand-written files,
// and parse-error reporting.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/datasets/text_io.h"
#include "pgsim/graph/vf2.h"

namespace pgsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content;
}

TEST(TextIoTest, DatabaseRoundTrip) {
  SyntheticOptions options;
  options.num_graphs = 6;
  options.avg_vertices = 8;
  options.seed = 3001;
  auto db = GenerateDatabase(options).value();
  LabelTable labels;
  for (uint32_t i = 0; i < options.num_vertex_labels; ++i) {
    labels.Intern("L" + std::to_string(i));
  }
  const std::string path = TempPath("pgsim_textio_db.txt");
  ASSERT_TRUE(SaveDatabaseText(path, db, labels).ok());
  auto loaded = LoadDatabaseText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->graphs.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    const ProbabilisticGraph& a = db[i];
    const ProbabilisticGraph& b = loaded->graphs[i];
    // The loader interns labels in first-seen order, so ids may be permuted;
    // the writer preserves vertex/edge order, so compare structurally with
    // labels matched by *name*.
    ASSERT_EQ(a.certain().NumVertices(), b.certain().NumVertices());
    ASSERT_EQ(a.certain().NumEdges(), b.certain().NumEdges());
    for (VertexId v = 0; v < a.certain().NumVertices(); ++v) {
      EXPECT_EQ(labels.Name(a.certain().VertexLabel(v)),
                loaded->labels.Name(b.certain().VertexLabel(v)));
    }
    for (EdgeId e = 0; e < a.certain().NumEdges(); ++e) {
      EXPECT_EQ(a.certain().GetEdge(e).u, b.certain().GetEdge(e).u);
      EXPECT_EQ(a.certain().GetEdge(e).v, b.certain().GetEdge(e).v);
    }
    ASSERT_EQ(a.ne_sets().size(), b.ne_sets().size());
    ASSERT_EQ(a.NumEdges(), b.NumEdges());
    // Identical joint distribution: same world probabilities.
    Rng rng(7);
    for (int s = 0; s < 20; ++s) {
      const EdgeBitset world = a.SampleWorld(&rng);
      EXPECT_NEAR(a.WorldProbability(world), b.WorldProbability(world),
                  1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, QueriesRoundTrip) {
  SyntheticOptions options;
  options.num_graphs = 4;
  options.avg_vertices = 10;
  options.seed = 3003;
  auto db = GenerateDatabase(options).value();
  auto queries = GenerateQueries(db, 4, 5, 11).value();
  LabelTable labels;
  for (uint32_t i = 0; i < options.num_vertex_labels; ++i) {
    labels.Intern("L" + std::to_string(i));
  }
  const std::string path = TempPath("pgsim_textio_q.txt");
  ASSERT_TRUE(SaveQueriesText(path, queries, labels).ok());
  LabelTable loaded_labels = labels;
  auto loaded = LoadQueriesText(path, &loaded_labels);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(AreIsomorphic(queries[i], (*loaded)[i]));
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, HandWrittenFileWithCommentsParses) {
  const std::string path = TempPath("pgsim_textio_hand.txt");
  WriteFile(path,
            "# a hand-written database\n"
            "pgsimdb 1\n"
            "\n"
            "graph 0\n"
            "v kinase\n"
            "v ligase\n"
            "v kinase\n"
            "e 0 1 binds\n"
            "e 1 2 binds\n"
            "ne 0 1\n"
            "t 0.1 0.2 0.3 0.4\n"
            "end\n");
  auto db = LoadDatabaseText(path);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->graphs.size(), 1u);
  const ProbabilisticGraph& g = db->graphs[0];
  EXPECT_EQ(g.certain().NumVertices(), 3u);
  EXPECT_EQ(g.certain().NumEdges(), 2u);
  EXPECT_EQ(db->labels.Lookup("kinase"), g.certain().VertexLabel(0));
  // Table normalized: Pr(both present) = 0.4.
  EdgeBitset both(2);
  both.Set(0);
  both.Set(1);
  EXPECT_NEAR(g.WorldProbability(both), 0.4, 1e-12);
  std::remove(path.c_str());
}

TEST(TextIoTest, ParseErrorsCarryLineNumbers) {
  struct Case {
    const char* name;
    const char* content;
  };
  const Case cases[] = {
      {"bad_header", "nope 1\n"},
      {"bad_record", "pgsimdb 1\ngraph 0\nx 1 2\nend\n"},
      {"missing_end", "pgsimdb 1\ngraph 0\nv a\n"},
      {"table_without_ne", "pgsimdb 1\ngraph 0\nv a\nt 0.5 0.5\nend\n"},
      {"ne_without_table",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 1 x\nne 0\nend\n"},
      {"arity_mismatch",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 1 x\nne 0\nt 0.1 0.2 0.3 0.4\n"
       "end\n"},
      {"uncovered_edge", "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 1 x\nend\n"},
  };
  for (const Case& c : cases) {
    const std::string path = TempPath(std::string("pgsim_bad_") + c.name);
    WriteFile(path, c.content);
    auto db = LoadDatabaseText(path);
    EXPECT_FALSE(db.ok()) << c.name;
    std::remove(path.c_str());
  }
}

TEST(TextIoTest, MalformedNumbersAreCleanErrorsWithLineNumbers) {
  // Negative counts, out-of-range ids, and bad probabilities used to reach
  // unchecked std::stoul/std::stod (throwing or silently wrapping); every
  // one must now be an InvalidArgument naming the offending line.
  struct Case {
    const char* name;
    const char* content;
    const char* line;  // expected "line N" fragment in the message
  };
  const Case cases[] = {
      {"negative_vertex_id",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne -1 1 x\nend\n", "line 5"},
      {"garbage_vertex_id",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne zero 1 x\nend\n", "line 5"},
      {"out_of_range_vertex_id",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 7 x\nend\n", "line 5"},
      {"huge_vertex_id",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 99999999999 x\nend\n", "line 5"},
      {"negative_edge_id",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 1 x\nne -2\nt 0.5 0.5\nend\n",
       "line 6"},
      {"garbage_probability",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 1 x\nne 0\nt 0.5 oops\nend\n",
       "line 7"},
      {"negative_probability",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 1 x\nne 0\nt -0.5 1.5\nend\n",
       "line 7"},
      {"nan_probability",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 1 x\nne 0\nt nan 1\nend\n",
       "line 7"},
      {"trailing_junk_probability",
       "pgsimdb 1\ngraph 0\nv a\nv b\ne 0 1 x\nne 0\nt 0.5x 0.5\nend\n",
       "line 7"},
  };
  for (const Case& c : cases) {
    const std::string path = TempPath(std::string("pgsim_num_") + c.name);
    WriteFile(path, c.content);
    auto db = LoadDatabaseText(path);
    ASSERT_FALSE(db.ok()) << c.name;
    EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_NE(db.status().message().find(c.line), std::string::npos)
        << c.name << ": " << db.status().message();
    std::remove(path.c_str());
  }
  // The query loader shares the helpers.
  const std::string qpath = TempPath("pgsim_num_query");
  WriteFile(qpath, "pgsimq 1\nquery 0\nv a\nv b\ne 0 -1 x\nend\n");
  LabelTable labels;
  auto queries = LoadQueriesText(qpath, &labels);
  ASSERT_FALSE(queries.ok());
  EXPECT_EQ(queries.status().code(), StatusCode::kInvalidArgument);
  std::remove(qpath.c_str());
}

TEST(TextIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadDatabaseText("/nonexistent/pgsim.txt").ok());
  LabelTable labels;
  EXPECT_FALSE(LoadQueriesText("/nonexistent/pgsim.txt", &labels).ok());
}

}  // namespace
}  // namespace pgsim
